/**
 * @file
 * Coroutine workload-generation framework.
 *
 * Each application thread is a C++20 coroutine (`Task`) that emits
 * micro-ops through its ThreadCtx. The ThreadCtx is the pipeline-facing
 * InstSource: when the fetch stage pulls and the buffer is empty, the
 * coroutine is resumed until it emits. Loads return their functional
 * value at emission (execute-at-generate), so spins, locks and
 * data-dependent control flow behave like real code.
 *
 * Tasks nest (`co_await subTask(...)`) with symmetric transfer, which
 * keeps the synchronization library (locks, tree barriers) and the
 * applications readable.
 *
 * Program counters: straight-line emission advances a virtual PC;
 * loopBegin/loopEnd rewind it so iterations replay the same PCs — the
 * I-cache, BTB and branch predictor see a faithful static code image.
 */

#ifndef SMTP_WORKLOAD_GEN_HPP
#define SMTP_WORKLOAD_GEN_HPP

#include <coroutine>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "cpu/inst.hpp"
#include "snap/snap.hpp"
#include "workload/func_mem.hpp"

namespace smtp
{

class ThreadCtx;

/** Awaitable coroutine task with symmetric-transfer nesting. */
class Task
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { SMTP_PANIC("workload threw"); }
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Task &
    operator=(Task &&other) noexcept
    {
        if (handle_)
            handle_.destroy();
        handle_ = std::exchange(other.handle_, nullptr);
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task()
    {
        if (handle_)
            handle_.destroy();
    }

    bool done() const { return !handle_ || handle_.done(); }

    /** Awaiting a sub-task transfers control into it. */
    struct Awaiter
    {
        std::coroutine_handle<promise_type> child;

        bool await_ready() noexcept { return !child || child.done(); }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) noexcept
        {
            child.promise().continuation = parent;
            return child;
        }

        void await_resume() noexcept {}
    };

    Awaiter operator co_await() const noexcept { return Awaiter{handle_}; }

    std::coroutine_handle<promise_type> handle() const { return handle_; }

  private:
    std::coroutine_handle<promise_type> handle_;
};

/**
 * Per-thread generation context and InstSource.
 *
 * The micro-op emitters are awaitables: the coroutine suspends after
 * each emission, so the pipeline pulls exactly as fast as it fetches.
 */
class ThreadCtx : public InstSource
{
  public:
    ThreadCtx(FuncMem &mem, NodeId node, std::uint64_t pc_base)
        : mem_(&mem), node_(node), vpc_(pc_base)
    {
    }

    ThreadCtx(const ThreadCtx &) = delete;

    void
    run(Task task)
    {
        task_ = std::move(task);
        resume_ = task_.handle();
    }

    NodeId node() const { return node_; }
    FuncMem &mem() { return *mem_; }

    // ---- InstSource ---------------------------------------------------

    bool
    hasNext() override
    {
        pump();
        return !buf_.empty();
    }

    const MicroOp &
    peek() override
    {
        pump();
        SMTP_ASSERT(!buf_.empty(), "peek on a drained generator");
        return buf_.front();
    }

    void
    consume() override
    {
        ++supplied_;
        buf_.pop_front();
    }

    bool
    finished() override
    {
        pump();
        return buf_.empty() && task_.done();
    }

    /**
     * Sharded execution: generation touches the machine-global
     * functional memory and resume log, so mid-window pumping from a
     * shard thread is forbidden. Buffered mode confines every resume to
     * refill(), which the machine calls from the single-threaded
     * barrier phase in global-thread-id order (a deterministic schedule
     * under any host-thread count). A drained buffer simply stalls the
     * fetch stage until the next barrier tops it up.
     */
    void setBuffered(bool on) override { buffered_ = on; }

    void
    refill(std::size_t target) override
    {
        while (buf_.size() < target && !task_.done()) {
            auto h = resume_;
            SMTP_ASSERT(h && !h.done(), "generator wedged");
            if (log_ != nullptr)
                log_->resumes.push_back(gtid_);
            h.resume();
        }
    }

    std::uint64_t supplied() const { return supplied_; }

    // ---- Snapshot support ----------------------------------------------
    //
    // Coroutine frames cannot be serialized, so checkpoints record a
    // *resume log* instead: the owning App keeps one global sequence of
    // thread ids, appended each time any generator coroutine is resumed.
    // Restoring rebuilds the app from its (deterministic) config and
    // replays the log — every emission, functional-memory access and
    // data-dependent branch re-executes in the original global order —
    // then pops each thread's consumed prefix. The scalars saved here
    // only validate that the replay converged to the same state.

    struct ResumeLog
    {
        /** Global resume order: one gtid per coroutine resume. */
        std::vector<std::uint32_t> resumes;
        /**
         * Barrier-clock epochs: entry (i, t) means resumes from index i
         * onward were generated with the clock reading t. Saved and
         * replayed with the log so tick-stamped work items (request
         * birth times, latency samples) reproduce exactly on restore.
         */
        std::vector<std::pair<std::uint64_t, Tick>> epochs;
        /** Clock as of the latest setNow(); 0 before the first window. */
        Tick now = 0;

        void
        setNow(Tick t)
        {
            if (t == now)
                return;
            now = t;
            epochs.emplace_back(resumes.size(), t);
        }
    };

    /** Log every coroutine resume as @p gtid into @p log. */
    void
    attachResumeLog(ResumeLog *log, std::uint32_t gtid)
    {
        log_ = log;
        gtid_ = gtid;
    }

    /** Machine barrier phase publishes the tick before each refill. */
    void
    setNow(Tick t) override
    {
        if (log_ != nullptr)
            log_->setNow(t);
    }

    /**
     * Generation-time clock for stamping work items: the tick of the
     * last barrier before the current refill (window granularity), 0
     * when no log is attached or generation is unbuffered.
     */
    Tick
    now() const
    {
        return log_ != nullptr ? log_->now : 0;
    }

    /** One unlogged resume (snapshot replay); false past generator end. */
    bool
    replayResume()
    {
        if (task_.done() || !resume_ || resume_.done())
            return false;
        auto h = resume_;
        h.resume();
        return true;
    }

    void
    saveState(snap::Ser &out) const
    {
        out.u64(supplied_);
        out.u64(vpc_);
        out.u64(buf_.size());
        out.u32(intRot_);
        out.u32(fpRot_);
        out.u8(lastLoadReg_);
    }

    /** Validate + finish a replayed rebuild (call on a fresh, fully
     *  replayed context: supplied_ == 0, buf_ holds every emission). */
    void
    restoreState(snap::Des &in)
    {
        std::uint64_t supplied = in.u64();
        std::uint64_t vpc = in.u64();
        std::uint64_t buffered = in.u64();
        std::uint32_t int_rot = in.u32();
        std::uint32_t fp_rot = in.u32();
        std::uint8_t last_load = in.u8();
        if (!in.ok())
            return;
        if (supplied > buf_.size()) {
            in.fail("corrupt snapshot: consumed micro-op count exceeds "
                    "replayed emissions");
            return;
        }
        for (std::uint64_t i = 0; i < supplied; ++i)
            buf_.pop_front();
        supplied_ = supplied;
        if (vpc_ != vpc || buf_.size() != buffered ||
            intRot_ != int_rot || fpRot_ != fp_rot ||
            lastLoadReg_ != last_load) {
            in.fail("workload replay divergence: the rebuilt generator "
                    "does not match the snapshotted one (different app, "
                    "seed, scale, or code version?)");
        }
    }

    // ---- Emission primitives (used by awaitables below) ----------------

    struct Suspend
    {
        ThreadCtx *ctx;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h) noexcept
        {
            ctx->resume_ = h;
        }

        void await_resume() const noexcept {}
    };

    struct LoadAwait : Suspend
    {
        std::uint64_t value;
        std::uint64_t await_resume() const noexcept { return value; }
    };

    struct LoadFAwait : Suspend
    {
        double value;
        double await_resume() const noexcept { return value; }
    };

    /** Timed 8-byte load; resumes with the functional value. */
    LoadAwait
    load(Addr addr)
    {
        emitLoad(addr);
        return LoadAwait{{this}, mem_->read(addr)};
    }

    LoadFAwait
    loadF(Addr addr)
    {
        emitLoad(addr);
        return LoadFAwait{{this}, mem_->readF(addr)};
    }

    Suspend
    store(Addr addr, std::uint64_t value)
    {
        mem_->write(addr, value);
        emitStore(addr);
        return Suspend{this};
    }

    Suspend
    storeF(Addr addr, double value)
    {
        mem_->writeF(addr, value);
        emitStore(addr);
        return Suspend{this};
    }

    /** Atomic swap (LL/SC pair): returns the previous value. */
    LoadAwait
    swap(Addr addr, std::uint64_t value)
    {
        std::uint64_t old = mem_->read(addr);
        emitLoad(addr);
        mem_->write(addr, value);
        emitStore(addr);
        return LoadAwait{{this}, old};
    }

    /** Atomic fetch-and-add. */
    LoadAwait
    fetchAdd(Addr addr, std::uint64_t delta)
    {
        std::uint64_t old = mem_->read(addr);
        emitLoad(addr);
        mem_->write(addr, old + delta);
        emitStore(addr);
        return LoadAwait{{this}, old};
    }

    Suspend
    prefetch(Addr addr, bool exclusive = false)
    {
        MicroOp op = base(exclusive ? OpClass::PrefetchEx
                                    : OpClass::Prefetch);
        op.effAddr = addr;
        buf_.push_back(op);
        return Suspend{this};
    }

    /** Emit @p n integer ALU ops with light dependency structure. */
    Suspend
    intOps(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i) {
            MicroOp op = base(OpClass::IntAlu);
            op.dest = nextIntReg();
            op.src1 = lastIntReg();
            buf_.push_back(op);
        }
        return Suspend{this};
    }

    /**
     * Emit @p n floating-point ops (mul/add mix). Dependencies form
     * four interleaved chains — the instruction-level parallelism of
     * real butterfly/stencil kernels — so the three FPUs are usable.
     */
    Suspend
    fpOps(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i) {
            MicroOp op =
                base(i % 2 ? OpClass::FpAdd : OpClass::FpMul);
            std::uint8_t chain_src = static_cast<std::uint8_t>(
                fpRegBase + 2 + (fpRot_ + 24 - 4) % 24);
            op.dest = nextFpReg();
            op.src1 = chain_src;
            op.src2 = lastLoadReg_;
            buf_.push_back(op);
        }
        return Suspend{this};
    }

    // ---- Structured control flow ----------------------------------------

    struct LoopHandle
    {
        std::uint64_t headPc;
    };

    LoopHandle loopBegin() { return LoopHandle{vpc_}; }

    /** Backward branch; rewinds the virtual PC while iterating. */
    Suspend
    loopEnd(LoopHandle h, bool more)
    {
        MicroOp op = base(OpClass::Branch);
        op.isCondBranch = true;
        op.taken = more;
        op.target = more ? h.headPc : op.pc + 4;
        buf_.push_back(op);
        if (more)
            vpc_ = h.headPc;
        return Suspend{this};
    }

    /** A resolved forward conditional branch (e.g. convergence tests). */
    Suspend
    branch(bool taken, std::uint64_t skip_ops = 4)
    {
        MicroOp op = base(OpClass::Branch);
        op.isCondBranch = true;
        op.taken = taken;
        op.target = op.pc + 4 + (taken ? 4 * skip_ops : 0);
        buf_.push_back(op);
        if (taken)
            vpc_ = op.target;
        return Suspend{this};
    }

  private:
    friend struct Suspend;

    MicroOp
    base(OpClass cls)
    {
        MicroOp op;
        op.cls = cls;
        op.pc = vpc_;
        vpc_ += 4;
        return op;
    }

    void
    emitLoad(Addr addr)
    {
        MicroOp op = base(OpClass::Load);
        op.dest = nextIntReg();
        op.src1 = addrReg_;
        op.effAddr = addr;
        lastLoadReg_ = op.dest;
        buf_.push_back(op);
    }

    void
    emitStore(Addr addr)
    {
        MicroOp op = base(OpClass::Store);
        op.src1 = addrReg_;
        op.src2 = lastIntReg();
        op.effAddr = addr;
        buf_.push_back(op);
    }

    std::uint8_t
    nextIntReg()
    {
        intRot_ = (intRot_ + 1) % 20;
        return static_cast<std::uint8_t>(4 + intRot_);
    }

    std::uint8_t
    lastIntReg() const
    {
        return static_cast<std::uint8_t>(4 + intRot_);
    }

    std::uint8_t
    nextFpReg()
    {
        fpRot_ = (fpRot_ + 1) % 24;
        return static_cast<std::uint8_t>(fpRegBase + 2 + fpRot_);
    }

    std::uint8_t
    lastFpReg() const
    {
        return static_cast<std::uint8_t>(fpRegBase + 2 + fpRot_);
    }

    void
    pump()
    {
        if (buffered_)
            return; // refill() is the only legal generation point
        while (buf_.empty() && !task_.done()) {
            auto h = resume_;
            SMTP_ASSERT(h && !h.done(), "generator wedged");
            if (log_ != nullptr)
                log_->resumes.push_back(gtid_);
            h.resume();
        }
    }

    FuncMem *mem_;
    NodeId node_;
    std::uint64_t vpc_;
    std::deque<MicroOp> buf_;
    Task task_;
    std::coroutine_handle<> resume_;
    unsigned intRot_ = 0;
    unsigned fpRot_ = 0;
    std::uint8_t addrReg_ = 2;      ///< Nominal base-address register.
    std::uint8_t lastLoadReg_ = 4;
    std::uint64_t supplied_ = 0;
    bool buffered_ = false;
    ResumeLog *log_ = nullptr;
    std::uint32_t gtid_ = 0;
};

} // namespace smtp

#endif // SMTP_WORKLOAD_GEN_HPP
