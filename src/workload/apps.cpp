/**
 * @file
 * The six applications of the paper's Table 1, implemented as reactive
 * micro-op generators (DESIGN.md substitution 1). Each reproduces its
 * original's decomposition, page placement, prefetching, communication
 * pattern and synchronization:
 *
 *   FFT    1D six-step with blocked, padded transposes (all-to-all)
 *   FFTW   3D transform, slab decomposition, heavier integer address
 *          arithmetic (the paper's register-pressure workload)
 *   LU     blocked dense factorization, 2D scatter ownership
 *          (pivot-block broadcast; compute-bound)
 *   Radix  per-digit histogram + parallel scan + permutation scatter
 *   Ocean  red-black stencil relaxation with a global error lock
 *          (test–lock–test–set–unlock) and multigrid-style coarse level
 *   Water  n-body with per-molecule force locks (migratory sharing;
 *          compute-bound)
 *
 * Problem sizes default to fast-simulation scales; `scale` multiplies
 * them towards the paper's sizes (Table 1).
 */

#include "app.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "workload/server/server.hpp"

namespace smtp::workload
{

namespace
{

/** Complex double. */
constexpr unsigned cplxBytes = 16;

unsigned
scaled(double base, double scale, unsigned minimum, unsigned multiple)
{
    auto v = static_cast<unsigned>(base * scale);
    v = std::max(v, minimum);
    return static_cast<unsigned>(roundUp(v, multiple));
}

// ====================================================================
// FFT
// ====================================================================

class FftApp : public App
{
  public:
    std::string_view name() const override { return "FFT"; }

    void
    build(const WorkloadEnv &env) override
    {
        makeThreads(env);
        unsigned p = env.totalThreads();
        rows_ = scaled(64, std::sqrt(env.scale), std::max(16u, 4 * p),
                       std::max(4u, 4 * p));
        cols_ = rows_;
        rowsPerThread_ = rows_ / p;
        // Rows padded to avoid transpose tile conflicts (the paper's
        // "carefully optimized using padding and tiling").
        rowBytes_ = roundUp(cols_ * cplxBytes, 256) + 128;
        std::uint64_t part = rowsPerThread_ * rowBytes_;
        for (unsigned t = 0; t < p; ++t) {
            partsA_.push_back(
                alloc_->alloc(part, env.nodeOf(t), pageBytes));
            partsB_.push_back(
                alloc_->alloc(part, env.nodeOf(t), pageBytes));
        }
        barrier_ = std::make_unique<TreeBarrier>(
            p, env.nodes, [&](NodeId h) { return alloc_->allocLine(h); });
        for (unsigned t = 0; t < p; ++t)
            threads_[t]->run(thread(*threads_[t], t));
    }

  private:
    Addr
    addr(const std::vector<Addr> &parts, unsigned r, unsigned c) const
    {
        return parts[r / rowsPerThread_] +
               static_cast<Addr>(r % rowsPerThread_) * rowBytes_ +
               static_cast<Addr>(c) * cplxBytes;
    }

    Task
    thread(ThreadCtx &ctx, unsigned tid)
    {
        unsigned r0 = tid * rowsPerThread_;
        unsigned r1 = r0 + rowsPerThread_;
        // ~5 log2(n) flops per complex point (the real radix-2 count),
        // emitted per 4-point butterfly group.
        unsigned fp_per_group = 20 * floorLog2(std::max(4u, cols_));

        // One 1D FFT pass over this thread's (local) rows.
        auto row_ffts = [&, this](const std::vector<Addr> &mat) -> Task {
            auto rows_lp = ctx.loopBegin();
            for (unsigned r = r0; r < r1; ++r) {
                auto pts = ctx.loopBegin();
                for (unsigned c = 0; c < cols_; c += 4) {
                    for (unsigned k = 0; k < 4; ++k)
                        co_await ctx.load(addr(mat, r, c + k));
                    co_await ctx.fpOps(fp_per_group);
                    for (unsigned k = 0; k < 4; ++k)
                        co_await ctx.store(addr(mat, r, c + k), c + k + 1);
                    co_await ctx.loopEnd(pts, c + 4 < cols_);
                }
                co_await ctx.loopEnd(rows_lp, r + 1 < r1);
            }
        };

        // Blocked transpose src -> dst: my rows of dst gather columns
        // of src — all-to-all remote reads, with prefetching.
        auto transpose = [&, this](const std::vector<Addr> &src,
                                   const std::vector<Addr> &dst) -> Task {
            constexpr unsigned T = 4;
            // Software-pipelined: tile (r, c) prefetches tile (r, c+T)
            // so the remote lines arrive while this tile is consumed
            // (the paper's hand-inserted prefetching).
            auto tiles_r = ctx.loopBegin();
            for (unsigned r = r0; r < r1; r += T) {
                for (unsigned k = 0; k < T; ++k)
                    co_await ctx.prefetch(addr(src, k, r));
                auto tiles_c = ctx.loopBegin();
                for (unsigned c = 0; c < cols_; c += T) {
                    if (c + T < cols_) {
                        for (unsigned k = 0; k < T; ++k)
                            co_await ctx.prefetch(addr(src, c + T + k, r));
                    }
                    for (unsigned i = 0; i < T; ++i) {
                        for (unsigned j = 0; j < T; ++j) {
                            co_await ctx.load(addr(src, c + j, r + i));
                            co_await ctx.store(addr(dst, r + i, c + j),
                                               c + j);
                        }
                        co_await ctx.intOps(2);
                    }
                    co_await ctx.loopEnd(tiles_c, c + T < cols_);
                }
                co_await ctx.loopEnd(tiles_r, r + T < r1);
            }
        };

        co_await row_ffts(partsA_);
        co_await barrier_->wait(ctx, tid);
        co_await transpose(partsA_, partsB_);
        co_await barrier_->wait(ctx, tid);
        co_await row_ffts(partsB_);
        co_await barrier_->wait(ctx, tid);
        co_await transpose(partsB_, partsA_);
        co_await barrier_->wait(ctx, tid);
        co_await row_ffts(partsA_);
        co_await barrier_->wait(ctx, tid);
    }

    unsigned rows_ = 0, cols_ = 0, rowsPerThread_ = 0;
    std::uint64_t rowBytes_ = 0;
    std::vector<Addr> partsA_, partsB_;
    std::unique_ptr<TreeBarrier> barrier_;
};

// ====================================================================
// FFTW (3D, slab decomposition)
// ====================================================================

class FftwApp : public App
{
  public:
    std::string_view name() const override { return "FFTW"; }

    void
    build(const WorkloadEnv &env) override
    {
        makeThreads(env);
        unsigned p = env.totalThreads();
        // nx (distributed) x ny x nz; paper: 8192x16x16.
        nx_ = scaled(32, std::cbrt(env.scale), std::max(4u, p),
                     std::max(4u, p));
        ny_ = 8;
        nz_ = 8;
        planeBytes_ = static_cast<std::uint64_t>(ny_) * nz_ * cplxBytes;
        slabPlanes_ = nx_ / p;
        for (unsigned t = 0; t < p; ++t) {
            slabs_.push_back(alloc_->alloc(slabPlanes_ * planeBytes_,
                                           env.nodeOf(t), pageBytes));
            slabs2_.push_back(alloc_->alloc(slabPlanes_ * planeBytes_,
                                            env.nodeOf(t), pageBytes));
        }
        barrier_ = std::make_unique<TreeBarrier>(
            p, env.nodes, [&](NodeId h) { return alloc_->allocLine(h); });
        for (unsigned t = 0; t < p; ++t)
            threads_[t]->run(thread(*threads_[t], t, p));
    }

  private:
    Addr
    planeAddr(const std::vector<Addr> &slabs, unsigned x) const
    {
        return slabs[x / slabPlanes_] +
               static_cast<Addr>(x % slabPlanes_) * planeBytes_;
    }

    Task
    thread(ThreadCtx &ctx, unsigned tid, unsigned p)
    {
        unsigned x0 = tid * slabPlanes_, x1 = x0 + slabPlanes_;
        unsigned fp = 20 * floorLog2(std::max(4u, ny_ * nz_));

        // Local y/z transforms over my slab: heavy integer address
        // arithmetic per point (FFTW's codelet indexing) — the paper's
        // register-pressure workload.
        auto local_pass = [&](const std::vector<Addr> &slabs) -> Task {
            auto planes = ctx.loopBegin();
            for (unsigned x = x0; x < x1; ++x) {
                Addr base = planeAddr(slabs, x);
                auto pts = ctx.loopBegin();
                for (unsigned i = 0; i < ny_ * nz_; i += 4) {
                    co_await ctx.intOps(6); // strided index computation
                    for (unsigned k = 0; k < 4; ++k)
                        co_await ctx.load(base + (i + k) * cplxBytes);
                    co_await ctx.fpOps(fp);
                    for (unsigned k = 0; k < 4; ++k)
                        co_await ctx.store(base + (i + k) * cplxBytes,
                                           i + k);
                    co_await ctx.loopEnd(pts, i + 4 < ny_ * nz_);
                }
                co_await ctx.loopEnd(planes, x + 1 < x1);
            }
        };

        // Global redistribution: gather one pencil from every slab.
        auto exchange = [&](const std::vector<Addr> &src,
                            const std::vector<Addr> &dst) -> Task {
            auto xs = ctx.loopBegin();
            for (unsigned x = 0; x < nx_; ++x) {
                Addr sbase = planeAddr(src, x);
                Addr dbase = planeAddr(dst, x0) +
                             (x % slabPlanes_) * cplxBytes;
                if (x + 1 < nx_) {
                    // Prefetch the next plane's pencil while this one
                    // streams through.
                    Addr nbase = planeAddr(src, x + 1);
                    for (unsigned i = 0; i < ny_; i += 2) {
                        co_await ctx.prefetch(
                            nbase + (i * nz_ + tid % nz_) * cplxBytes);
                    }
                }
                auto ys = ctx.loopBegin();
                for (unsigned i = 0; i < ny_; ++i) {
                    co_await ctx.intOps(4);
                    co_await ctx.load(sbase +
                                      (i * nz_ + tid % nz_) * cplxBytes);
                    co_await ctx.store(dbase + i * nz_ * cplxBytes, x + i);
                    co_await ctx.loopEnd(ys, i + 1 < ny_);
                }
                co_await ctx.loopEnd(xs, x + 1 < nx_);
            }
        };

        co_await local_pass(slabs_);
        co_await barrier_->wait(ctx, tid);
        co_await exchange(slabs_, slabs2_);
        co_await barrier_->wait(ctx, tid);
        co_await local_pass(slabs2_);
        co_await barrier_->wait(ctx, tid);
        co_await exchange(slabs2_, slabs_);
        co_await barrier_->wait(ctx, tid);
        co_await local_pass(slabs_);
        co_await barrier_->wait(ctx, tid);
        (void)p;
    }

    unsigned nx_ = 0, ny_ = 0, nz_ = 0, slabPlanes_ = 0;
    std::uint64_t planeBytes_ = 0;
    std::vector<Addr> slabs_, slabs2_;
    std::unique_ptr<TreeBarrier> barrier_;
};

// ====================================================================
// LU
// ====================================================================

class LuApp : public App
{
  public:
    std::string_view name() const override { return "LU"; }

    void
    build(const WorkloadEnv &env) override
    {
        makeThreads(env);
        unsigned p = env.totalThreads();
        blockN_ = 16; // paper: 16x16 blocks
        nb_ = scaled(8, std::cbrt(env.scale),
                     std::max(4u, static_cast<unsigned>(
                                      std::ceil(std::sqrt(p)))),
                     2);
        blockBytes_ = static_cast<std::uint64_t>(blockN_) * blockN_ * 8;
        blocks_.resize(static_cast<std::size_t>(nb_) * nb_);
        for (unsigned bi = 0; bi < nb_; ++bi) {
            for (unsigned bj = 0; bj < nb_; ++bj) {
                unsigned owner = ownerOf(bi, bj, p);
                blocks_[bi * nb_ + bj] = alloc_->alloc(
                    blockBytes_, env.nodeOf(owner), l2LineBytes);
            }
        }
        barrier_ = std::make_unique<TreeBarrier>(
            p, env.nodes, [&](NodeId h) { return alloc_->allocLine(h); });
        for (unsigned t = 0; t < p; ++t)
            threads_[t]->run(thread(*threads_[t], t, p));
    }

  private:
    unsigned
    ownerOf(unsigned bi, unsigned bj, unsigned p) const
    {
        // 2D scatter decomposition (SPLASH-2 LU).
        return (bi + bj * 3) % p;
    }

    Addr block(unsigned bi, unsigned bj) const
    {
        return blocks_[bi * nb_ + bj];
    }

    /** Read a whole block (with prefetch), paying B^2 loads. */
    Task
    readBlock(ThreadCtx &ctx, Addr b)
    {
        unsigned words = blockN_ * blockN_ / 4;
        // Stream with a two-line prefetch distance.
        co_await ctx.prefetch(b);
        co_await ctx.prefetch(b + l2LineBytes);
        auto lp = ctx.loopBegin();
        for (unsigned i = 0; i < words; ++i) {
            Addr a = b + static_cast<Addr>(i) * 32;
            if (i % 4 == 0)
                co_await ctx.prefetch(a + 2 * l2LineBytes);
            co_await ctx.load(a);
            co_await ctx.loopEnd(lp, i + 1 < words);
        }
    }

    /** Update a local block: loads + compute-dominant fp + stores. */
    Task
    updateBlock(ThreadCtx &ctx, Addr b, unsigned fp_per_row)
    {
        auto lp = ctx.loopBegin();
        for (unsigned r = 0; r < blockN_; ++r) {
            Addr row = b + static_cast<Addr>(r) * blockN_ * 8;
            for (unsigned c = 0; c < blockN_; c += 8)
                co_await ctx.load(row + c * 8);
            co_await ctx.fpOps(fp_per_row);
            for (unsigned c = 0; c < blockN_; c += 8)
                co_await ctx.store(row + c * 8, r + c);
            co_await ctx.loopEnd(lp, r + 1 < blockN_);
        }
    }

    Task
    thread(ThreadCtx &ctx, unsigned tid, unsigned p)
    {
        for (unsigned k = 0; k < nb_; ++k) {
            if (ownerOf(k, k, p) == tid) {
                // Factor the diagonal block (B^3/3 flops).
                co_await updateBlock(ctx, block(k, k), blockN_ * 12);
            }
            co_await barrier_->wait(ctx, tid);
            // Perimeter: row k and column k read the diagonal block.
            for (unsigned j = k + 1; j < nb_; ++j) {
                if (ownerOf(k, j, p) == tid) {
                    co_await readBlock(ctx, block(k, k));
                    co_await updateBlock(ctx, block(k, j), blockN_ * 10);
                }
                if (ownerOf(j, k, p) == tid) {
                    co_await readBlock(ctx, block(k, k));
                    co_await updateBlock(ctx, block(j, k), blockN_ * 10);
                }
            }
            co_await barrier_->wait(ctx, tid);
            // Interior updates read two perimeter blocks each.
            for (unsigned i = k + 1; i < nb_; ++i) {
                for (unsigned j = k + 1; j < nb_; ++j) {
                    if (ownerOf(i, j, p) != tid)
                        continue;
                    co_await readBlock(ctx, block(i, k));
                    co_await readBlock(ctx, block(k, j));
                    co_await updateBlock(ctx, block(i, j), blockN_ * 16);
                }
            }
            co_await barrier_->wait(ctx, tid);
        }
    }

    unsigned blockN_ = 16, nb_ = 8;
    std::uint64_t blockBytes_ = 0;
    std::vector<Addr> blocks_;
    std::unique_ptr<TreeBarrier> barrier_;
};

// ====================================================================
// Radix-Sort
// ====================================================================

class RadixApp : public App
{
  public:
    std::string_view name() const override { return "Radix"; }

    void
    build(const WorkloadEnv &env) override
    {
        makeThreads(env);
        unsigned p = env.totalThreads();
        unsigned total_keys =
            scaled(4096, env.scale, std::max(64u * p, 512u), p);
        keysPerThread_ = total_keys / p;
        radix_ = 32; // paper: radix = 32
        passes_ = 2;
        for (unsigned t = 0; t < p; ++t) {
            NodeId home = env.nodeOf(t);
            srcParts_.push_back(
                alloc_->alloc(keysPerThread_ * 8, home, pageBytes));
            dstParts_.push_back(
                alloc_->alloc(keysPerThread_ * 8, home, pageBytes));
            histParts_.push_back(
                alloc_->alloc(radix_ * 8, home, l2LineBytes));
        }
        // Deterministic random keys in functional memory.
        for (unsigned t = 0; t < p; ++t) {
            for (unsigned i = 0; i < keysPerThread_; ++i) {
                env.mem->poke(srcParts_[t] + i * 8,
                              rng_.next() & 0x3ffffffffULL);
            }
        }
        barrier_ = std::make_unique<TreeBarrier>(
            p, env.nodes, [&](NodeId h) { return alloc_->allocLine(h); });
        for (unsigned t = 0; t < p; ++t)
            threads_[t]->run(thread(*threads_[t], t, p));
    }

  private:
    Task
    thread(ThreadCtx &ctx, unsigned tid, unsigned p)
    {
        unsigned digit_bits = 5; // radix 32
        std::vector<std::uint64_t> rank_base(radix_);
        const std::vector<Addr> *src = &srcParts_;
        const std::vector<Addr> *dst = &dstParts_;

        for (unsigned pass = 0; pass < passes_; ++pass) {
            unsigned shift = pass * digit_bits;
            // Phase 1: local histogram.
            auto hz = ctx.loopBegin();
            for (unsigned d = 0; d < radix_; ++d) {
                co_await ctx.store((*this).histParts_[tid] + d * 8, 0);
                co_await ctx.loopEnd(hz, d + 1 < radix_);
            }
            auto h1 = ctx.loopBegin();
            for (unsigned i = 0; i < keysPerThread_; ++i) {
                std::uint64_t key =
                    co_await ctx.load((*src)[tid] + i * 8);
                unsigned d = (key >> shift) & (radix_ - 1);
                co_await ctx.intOps(2);
                std::uint64_t c =
                    co_await ctx.load(histParts_[tid] + d * 8);
                co_await ctx.store(histParts_[tid] + d * 8, c + 1);
                co_await ctx.loopEnd(h1, i + 1 < keysPerThread_);
            }
            co_await barrier_->wait(ctx, tid);

            // Phase 2: global ranks — read every thread's histogram
            // (all-to-all read sharing of the histogram lines).
            std::uint64_t below = 0;
            for (unsigned d = 0; d < radix_; ++d)
                rank_base[d] = 0;
            auto h2 = ctx.loopBegin();
            for (unsigned d = 0; d < radix_; ++d) {
                std::uint64_t mine_before = 0;
                for (unsigned t = 0; t < p; ++t) {
                    std::uint64_t c =
                        co_await ctx.load(histParts_[t] + d * 8);
                    if (t < tid)
                        mine_before += c;
                    rank_base[d] += c;
                }
                co_await ctx.intOps(4);
                std::uint64_t start = below + mine_before;
                below += rank_base[d];
                rank_base[d] = start;
                co_await ctx.loopEnd(h2, d + 1 < radix_);
            }
            co_await barrier_->wait(ctx, tid);

            // Phase 3: permutation — scatter keys to their global rank
            // (remote exclusive stores across the whole machine),
            // software-pipelined in batches with prefetch-exclusive
            // (the paper's "prefetch exclusive" hint).
            // Two-stage software pipeline: batch B's destinations are
            // prefetched exclusively while batch B-1's stores drain, so
            // the retiring-store path almost always hits.
            constexpr unsigned batch = 8;
            std::uint64_t keys[2][batch];
            Addr dests[2][batch];
            unsigned counts[2] = {0, 0};
            unsigned cur = 0;
            auto h3 = ctx.loopBegin();
            for (unsigned i = 0; i < keysPerThread_ + batch; i += batch) {
                counts[cur] = 0;
                if (i < keysPerThread_) {
                    unsigned n_here =
                        std::min(batch, keysPerThread_ - i);
                    for (unsigned k = 0; k < n_here; ++k) {
                        keys[cur][k] =
                            co_await ctx.load((*src)[tid] + (i + k) * 8);
                        unsigned d =
                            (keys[cur][k] >> shift) & (radix_ - 1);
                        std::uint64_t rank = rank_base[d]++;
                        unsigned owner =
                            static_cast<unsigned>(rank / keysPerThread_);
                        dests[cur][k] =
                            (*dst)[owner] + (rank % keysPerThread_) * 8;
                        co_await ctx.intOps(3);
                        co_await ctx.prefetch(dests[cur][k], true);
                    }
                    counts[cur] = n_here;
                }
                unsigned prev = cur ^ 1;
                for (unsigned k = 0; k < counts[prev]; ++k)
                    co_await ctx.store(dests[prev][k], keys[prev][k]);
                cur = prev;
                co_await ctx.loopEnd(h3, i + batch < keysPerThread_ + batch);
            }
            counts[0] = counts[1] = 0;
            co_await barrier_->wait(ctx, tid);
            std::swap(src, dst);
        }
    }

    unsigned keysPerThread_ = 0, radix_ = 32, passes_ = 2;
    std::vector<Addr> srcParts_, dstParts_, histParts_;
    std::unique_ptr<TreeBarrier> barrier_;
};

// ====================================================================
// Ocean
// ====================================================================

class OceanApp : public App
{
  public:
    std::string_view name() const override { return "Ocean"; }

    void
    build(const WorkloadEnv &env) override
    {
        makeThreads(env);
        unsigned p = env.totalThreads();
        cols_ = 96;
        unsigned total_rows = scaled(
            128, std::sqrt(env.scale), std::max(2u * p, 32u), 2 * p);
        rowsPerThread_ = total_rows / p;
        iters_ = 4;
        rowBytes_ = cols_ * 8;
        for (unsigned t = 0; t < p; ++t) {
            NodeId home = env.nodeOf(t);
            // Fine grid partition + coarse (multigrid) partition.
            fine_.push_back(alloc_->alloc(rowsPerThread_ * rowBytes_,
                                          home, pageBytes));
            coarse_.push_back(alloc_->alloc(
                (rowsPerThread_ / 2) * (rowBytes_ / 2), home,
                l2LineBytes));
        }
        errLock_ = alloc_->allocLine(0);
        errVal_ = alloc_->allocLine(0);
        barrier_ = std::make_unique<TreeBarrier>(
            p, env.nodes, [&](NodeId h) { return alloc_->allocLine(h); });
        for (unsigned t = 0; t < p; ++t)
            threads_[t]->run(thread(*threads_[t], t, p));
    }

  private:
    Addr
    rowAddr(const std::vector<Addr> &grid, unsigned global_row,
            unsigned rpt, std::uint64_t row_bytes) const
    {
        return grid[global_row / rpt] +
               static_cast<Addr>(global_row % rpt) * row_bytes;
    }

    Task
    sweep(ThreadCtx &ctx, unsigned tid, unsigned p,
          const std::vector<Addr> &grid, unsigned rpt,
          std::uint64_t row_bytes, unsigned cols)
    {
        unsigned g0 = tid * rpt, g1 = g0 + rpt;
        auto rows_lp = ctx.loopBegin();
        for (unsigned r = g0; r < g1; ++r) {
            // Neighbour rows: the boundary rows live on neighbours.
            Addr north = r > 0 ? rowAddr(grid, r - 1, rpt, row_bytes)
                               : rowAddr(grid, r, rpt, row_bytes);
            Addr south = r + 1 < p * rpt
                             ? rowAddr(grid, r + 1, rpt, row_bytes)
                             : rowAddr(grid, r, rpt, row_bytes);
            Addr mid = rowAddr(grid, r, rpt, row_bytes);
            co_await ctx.prefetch(north);
            co_await ctx.prefetch(south);
            auto cols_lp = ctx.loopBegin();
            for (unsigned c = 0; c < cols; c += 2) {
                co_await ctx.load(north + c * 8);
                co_await ctx.load(south + c * 8);
                co_await ctx.load(mid + c * 8);
                co_await ctx.fpOps(6);
                co_await ctx.store(mid + c * 8, r + c);
                co_await ctx.loopEnd(cols_lp, c + 2 < cols);
            }
            co_await ctx.loopEnd(rows_lp, r + 1 < g1);
        }
    }

    Task
    thread(ThreadCtx &ctx, unsigned tid, unsigned p)
    {
        for (unsigned iter = 0; iter < iters_; ++iter) {
            co_await sweep(ctx, tid, p, fine_, rowsPerThread_, rowBytes_,
                           cols_);
            // Multigrid coarse level every other iteration.
            if (iter % 2 == 1) {
                co_await sweep(ctx, tid, p, coarse_, rowsPerThread_ / 2,
                               rowBytes_ / 2, cols_ / 2);
            }
            // Global error update: test–lock–test–set–unlock (the
            // paper's Ocean optimization is the acquire itself).
            co_await ctx.fpOps(8); // local residual reduction
            co_await acquireLock(ctx, errLock_);
            std::uint64_t e = co_await ctx.load(errVal_);
            co_await ctx.intOps(2);
            co_await ctx.store(errVal_, e + 1);
            co_await releaseLock(ctx, errLock_);
            co_await barrier_->wait(ctx, tid);
            // Convergence check: every thread reads the global error.
            std::uint64_t total = co_await ctx.load(errVal_);
            bool converged = total >= 0xffffffff; // never, in this run
            co_await ctx.branch(converged, 8);
            if (tid == 0)
                co_await ctx.store(errVal_, 0);
            co_await barrier_->wait(ctx, tid);
        }
    }

    unsigned cols_ = 64, rowsPerThread_ = 8, iters_ = 4;
    std::uint64_t rowBytes_ = 0;
    std::vector<Addr> fine_, coarse_;
    Addr errLock_ = 0, errVal_ = 0;
    std::unique_ptr<TreeBarrier> barrier_;
};

// ====================================================================
// Water
// ====================================================================

class WaterApp : public App
{
  public:
    std::string_view name() const override { return "Water"; }

    void
    build(const WorkloadEnv &env) override
    {
        makeThreads(env);
        unsigned p = env.totalThreads();
        unsigned total = scaled(96, std::cbrt(env.scale),
                                std::max(2u * p, 32u), 2 * p);
        molsPerThread_ = total / p;
        steps_ = 2;
        mols_.resize(total);
        locks_.resize(total);
        for (unsigned m = 0; m < total; ++m) {
            NodeId home = env.nodeOf(m / molsPerThread_);
            mols_[m] = alloc_->alloc(l2LineBytes, home, l2LineBytes);
            locks_[m] = alloc_->allocLine(home);
        }
        energyLock_ = alloc_->allocLine(0);
        energyVal_ = alloc_->allocLine(0);
        barrier_ = std::make_unique<TreeBarrier>(
            p, env.nodes, [&](NodeId h) { return alloc_->allocLine(h); });
        for (unsigned t = 0; t < p; ++t)
            threads_[t]->run(thread(*threads_[t], t, p));
    }

  private:
    Task
    thread(ThreadCtx &ctx, unsigned tid, unsigned p)
    {
        unsigned total = molsPerThread_ * p;
        unsigned m0 = tid * molsPerThread_;
        for (unsigned step = 0; step < steps_; ++step) {
            // Intra-molecule forces: local, heavily floating point.
            auto intra = ctx.loopBegin();
            for (unsigned i = 0; i < molsPerThread_; ++i) {
                Addr m = mols_[m0 + i];
                co_await ctx.load(m);
                co_await ctx.load(m + 32);
                co_await ctx.fpOps(40);
                co_await ctx.store(m + 64, i);
                co_await ctx.loopEnd(intra, i + 1 < molsPerThread_);
            }
            co_await barrier_->wait(ctx, tid);

            // Inter-molecule forces, SPLASH-2 Water-Nsq style: pair
            // potentials computed lock-free against locally accumulated
            // partials, then ONE locked update per partner molecule
            // (the migratory-line traffic the paper attributes to
            // Water's synchronization).
            auto inter_i = ctx.loopBegin();
            for (unsigned i = 0; i < molsPerThread_; ++i) {
                unsigned gi = m0 + i;
                auto inter_j = ctx.loopBegin();
                for (unsigned k = 1; k <= total / 2; ++k) {
                    unsigned gj = (gi + k) % total;
                    if (k < total / 2)
                        co_await ctx.prefetch(mols_[(gi + k + 1) % total]);
                    co_await ctx.load(mols_[gj]);      // partner position
                    co_await ctx.fpOps(44);            // pair potential
                    co_await ctx.loopEnd(inter_j, k < total / 2);
                }
                co_await ctx.loopEnd(inter_i, i + 1 < molsPerThread_);
            }
            // Apply accumulated partials: per-partition force locks
            // (one lock round per owning thread, SPLASH-2 style), with
            // the next partner's force line prefetched exclusively to
            // overlap the migratory transfers.
            auto acc_owner = ctx.loopBegin();
            for (unsigned q = 1; q <= (p + 1) / 2; ++q) {
                unsigned owner = (tid + q) % p;
                co_await ctx.prefetch(locks_[owner * molsPerThread_],
                                      true);
                co_await acquireLock(ctx,
                                     locks_[owner * molsPerThread_]);
                auto acc = ctx.loopBegin();
                for (unsigned j = 0; j < molsPerThread_; ++j) {
                    unsigned gj = owner * molsPerThread_ + j;
                    if (j + 1 < molsPerThread_) {
                        co_await ctx.prefetch(
                            mols_[gj + 1] + 96, true);
                    }
                    std::uint64_t f = co_await ctx.load(mols_[gj] + 96);
                    co_await ctx.fpOps(6);
                    co_await ctx.store(mols_[gj] + 96, f + 1);
                    co_await ctx.loopEnd(acc, j + 1 < molsPerThread_);
                }
                co_await releaseLock(ctx,
                                     locks_[owner * molsPerThread_]);
                co_await ctx.loopEnd(acc_owner, q < (p + 1) / 2);
            }
            co_await barrier_->wait(ctx, tid);

            // Position update (local) and global potential reduction.
            auto upd = ctx.loopBegin();
            for (unsigned i = 0; i < molsPerThread_; ++i) {
                Addr m = mols_[m0 + i];
                co_await ctx.load(m + 96);
                co_await ctx.fpOps(24);
                co_await ctx.store(m, step + i);
                co_await ctx.loopEnd(upd, i + 1 < molsPerThread_);
            }
            co_await acquireLock(ctx, energyLock_);
            std::uint64_t e = co_await ctx.load(energyVal_);
            co_await ctx.fpOps(4);
            co_await ctx.store(energyVal_, e + 1);
            co_await releaseLock(ctx, energyLock_);
            co_await barrier_->wait(ctx, tid);
        }
    }

    unsigned molsPerThread_ = 8, steps_ = 2;
    std::vector<Addr> mols_, locks_;
    Addr energyLock_ = 0, energyVal_ = 0;
    std::unique_ptr<TreeBarrier> barrier_;
};

} // namespace

std::unique_ptr<App>
makeApp(std::string_view name)
{
    if (name == "FFT" || name == "fft")
        return std::make_unique<FftApp>();
    if (name == "FFTW" || name == "fftw")
        return std::make_unique<FftwApp>();
    if (name == "LU" || name == "lu")
        return std::make_unique<LuApp>();
    if (name == "Radix" || name == "radix")
        return std::make_unique<RadixApp>();
    if (name == "Ocean" || name == "ocean")
        return std::make_unique<OceanApp>();
    if (name == "Water" || name == "water")
        return std::make_unique<WaterApp>();
    if (auto server = makeServerApp(name))
        return server;
    SMTP_FATAL("unknown application '%s'", std::string(name).c_str());
}

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names = {
        "FFT", "FFTW", "LU", "Ocean", "Radix", "Water",
    };
    return names;
}

} // namespace smtp::workload
