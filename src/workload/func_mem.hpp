/**
 * @file
 * Global functional memory.
 *
 * The single value plane of the DSM address space: workload generators
 * execute functionally against it at micro-op generation time while the
 * timing machine replays (DESIGN.md substitution 2). Synchronization
 * variables, radix keys, convergence residuals — everything a generator
 * branches on — lives here, so control flow is genuinely
 * data-dependent. Sparse, 8-byte word granularity.
 */

#ifndef SMTP_WORKLOAD_FUNC_MEM_HPP
#define SMTP_WORKLOAD_FUNC_MEM_HPP

#include <cstdint>
#include <unordered_map>

#include "common/log.hpp"
#include "common/types.hpp"

namespace smtp
{

class FuncMem
{
  public:
    std::uint64_t
    read(Addr addr) const
    {
        auto it = words_.find(addr & ~7ULL);
        return it == words_.end() ? 0 : it->second;
    }

    void
    write(Addr addr, std::uint64_t value)
    {
        Addr w = addr & ~7ULL;
        if (value == 0)
            words_.erase(w);
        else
            words_[w] = value;
    }

    /** Untimed initialisation poke (workload setup). */
    void poke(Addr addr, std::uint64_t value) { write(addr, value); }

    double
    readF(Addr addr) const
    {
        std::uint64_t v = read(addr);
        double d;
        static_assert(sizeof(d) == sizeof(v));
        __builtin_memcpy(&d, &v, sizeof(d));
        return d;
    }

    void
    writeF(Addr addr, double d)
    {
        std::uint64_t v;
        __builtin_memcpy(&v, &d, sizeof(v));
        write(addr, v);
    }

    std::size_t residentWords() const { return words_.size(); }

  private:
    std::unordered_map<Addr, std::uint64_t> words_;
};

} // namespace smtp

#endif // SMTP_WORKLOAD_FUNC_MEM_HPP
