/**
 * @file
 * Trace snapshot container + exporters.
 *
 * TraceData is the neutral form every consumer works on: the machine
 * snapshots its TraceManager into one, the binary reader reconstructs
 * one from a .smtptrace file, and the exporters (Perfetto JSON, CSV)
 * and tools/trace_report analyses take either source.
 *
 * All text output is byte-stable: timestamps print via integer
 * arithmetic (tick picoseconds -> microseconds with 3 decimals), no
 * wall-clock or locale-dependent formatting anywhere.
 */

#ifndef SMTP_TRACE_EXPORT_HPP
#define SMTP_TRACE_EXPORT_HPP

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/events.hpp"

namespace smtp::trace
{

struct TraceData
{
    struct Buffer
    {
        std::string name;
        NodeId node = 0;
        std::uint8_t category = 0;
        std::uint64_t recorded = 0; ///< Total over the run (ring may drop).
        std::vector<Event> events;  ///< Stored tail, oldest first.
    };

    std::vector<Buffer> buffers;

    // Interval time series (row-major: rows x seriesNames.size()).
    std::vector<std::string> seriesNames;
    std::vector<Tick> sampleTicks;
    std::vector<double> samples;

    Tick execTicks = 0;
    std::uint32_t nodes = 0;
    Tick intervalTicks = 0;
    /**
     * Directory-protocol variant of the traced machine. Empty when the
     * capture predates the field (container version 1), which readers
     * should render as the default "bitvector".
     */
    std::string protocol;
};

/**
 * Chrome trace-event JSON (load at ui.perfetto.dev or
 * chrome://tracing). One process per node, one track per component
 * buffer; per-thread CPU stalls fan out onto "cpu.tN" subtracks.
 */
void writePerfetto(const TraceData &data, std::ostream &os);

/** Interval time series as CSV: tick_ps,us,<series...> per row. */
void writeIntervalCsv(const TraceData &data, std::ostream &os);

/** Binary container (magic "SMTPTRC1"); read back with readTrace(). */
bool writeBinary(const TraceData &data, std::FILE *f);

/** Convenience: write stem.smtptrace / stem.json / stem.csv. */
bool writeTraceFiles(const TraceData &data, const std::string &stem,
                     std::string *err = nullptr);

/** Parse a .smtptrace file; false + @p err on malformed input. */
bool readTrace(const std::string &path, TraceData &out, std::string &err);

} // namespace smtp::trace

#endif // SMTP_TRACE_EXPORT_HPP
