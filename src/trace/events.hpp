/**
 * @file
 * Trace event vocabulary: the compact binary records every TraceBuffer
 * ring holds, plus the packing helpers that squeeze one event's payload
 * into a single 64-bit argument word and the shared text decoder used
 * by wedge reports and tools/trace_report.
 *
 * An Event is 16 bytes: 56 bits of tick (picoseconds — covers ~20 days
 * of simulated time), 8 bits of EventId, and 64 bits of per-event
 * payload. Recording one is two stores into a preallocated ring, so the
 * instrumentation macros are safe on every hot path.
 */

#ifndef SMTP_TRACE_EVENTS_HPP
#define SMTP_TRACE_EVENTS_HPP

#include <cstdint>
#include <cstdio>
#include <string_view>

#include "common/types.hpp"
#include "protocol/message.hpp"

namespace smtp::trace
{

/** Event categories; the runtime mask gates buffer creation per class. */
enum class Category : std::uint8_t
{
    Cpu = 0,      ///< Pipeline: thread stalls, fetch stealing.
    Protocol = 1, ///< Protocol agent: busy windows, handler lifetimes.
    Mem = 2,      ///< Controller + SDRAM + MSHRs.
    Network = 3,  ///< Inject / hop / land / deliver / back-pressure.
    Check = 4,    ///< Checker-owned rings (dispatch history).
    Fault = 5,    ///< Injected faults + retry/backoff decisions.
    Exec = 6,     ///< Shard executor: window advances, barrier waits.
    Workload = 7, ///< Server workloads: request retires, txn outcomes.
    NumCategories
};

constexpr std::uint32_t
categoryBit(Category c)
{
    return 1u << static_cast<unsigned>(c);
}

/**
 * The default category mask. Exec is deliberately excluded: barrier
 * waits record *host* time, which would make default trace exports
 * differ across exec modes and machines. Opt in with
 * `categories |= categoryBit(Category::Exec)`.
 */
constexpr std::uint32_t allCategories =
    ((1u << static_cast<unsigned>(Category::NumCategories)) - 1) &
    ~categoryBit(Category::Exec);

std::string_view categoryName(Category c);

enum class EventId : std::uint8_t
{
    None = 0,

    // ---- Cpu ----------------------------------------------------------
    ThreadStallBegin, ///< arg: stall pack (tid, cause).
    ThreadStallEnd,   ///< arg: stall pack (tid, cause).
    FetchSteal,       ///< arg: stall pack (tid, ops fetched this cycle).

    // ---- Protocol agent ----------------------------------------------
    ProtoBusyBegin,   ///< arg: 0. Agent goes idle -> busy (Table 7 window).
    ProtoBusyEnd,     ///< arg: 0. Agent drains back to idle.
    HandlerStart,     ///< arg: msg pack. Handler enters the agent.
    HandlerRetire,    ///< arg: msg pack. Handler's ldctxt completed.

    // ---- Mem ----------------------------------------------------------
    McDispatch,       ///< arg: msg pack. Dispatch-unit serialization point.
    McHandlerDone,    ///< arg: done pack (latency ticks, type).
    McNak,            ///< arg: msg pack. RplNak released to the network.
    McProbeDefer,     ///< arg: msg pack. Intervention parked for replay.
    MshrAlloc,        ///< arg: mshr pack (line, index, in-use count).
    MshrFree,         ///< arg: mshr pack (line, index, in-use count).
    SdramAccess,      ///< arg: sdram pack (bytes, write, queue delay).

    // ---- Network ------------------------------------------------------
    NetInject,        ///< arg: net pack. Message enters the fabric.
    NetHop,           ///< arg: net pack. Router-to-router traversal.
    NetLand,          ///< arg: net pack. Arrived in the landing buffer.
    NetDeliver,       ///< arg: net pack. NI input queue accepted it.
    NetBackpressure,  ///< arg: bp pack (vnet, landing-queue depth).

    // ---- Check --------------------------------------------------------
    HandlerExec,      ///< arg: exec pack (insts, sends, ack, mshr, node).

    // ---- Fault (src/fault injection + retry policy decisions) ---------
    FaultNetDrop,     ///< arg: net pack. One corrupted transmission,
                      ///< recovered by a link-level retransmit.
    FaultNetDup,      ///< arg: net pack. Delivery duplicated on the link.
    FaultNetDelay,    ///< arg: net pack. Traversal given extra jitter.
    FaultNetReorder,  ///< arg: net pack. Landing-buffer adjacent swap.
    FaultNetLost,     ///< arg: net pack. injectDropWithoutRetransmit bug:
                      ///< the message is gone for good.
    FaultEccCorrect,  ///< arg: ecc pack. Single-bit flip corrected.
    FaultEccDetect,   ///< arg: ecc pack. Double-bit flip; refetching.
    FaultForcedNak,   ///< arg: msg pack. Dispatch turned into RplNak.
    FaultRetryBackoff,///< arg: retry pack. NAK resend paced by policy.
    FaultStarvation,  ///< arg: retry pack. Retry count hit the bound.

    // ---- Exec (sharded run loop; see sim/shard.hpp) --------------------
    WindowAdvance,    ///< arg: window pack (shard, events run in window).
    BarrierWait,      ///< arg: window pack (shard, host ns waited at the
                      ///< barrier). Host time: never in default exports.

    // ---- Workload (server family; see src/workload/server/) ------------
    ReqRetire,        ///< arg: req pack (kind, latency ticks, node).
    TxnCommit,        ///< arg: txn pack (node, aborts before commit).
    TxnAbort,         ///< arg: txn pack (node, consecutive abort count).

    NumEvents
};

std::string_view eventName(EventId id);

/** One binary trace record. */
struct Event
{
    std::uint64_t meta = 0; ///< tick << 8 | EventId.
    std::uint64_t arg = 0;

    Tick tick() const { return meta >> 8; }
    EventId id() const { return static_cast<EventId>(meta & 0xff); }

    bool
    operator==(const Event &o) const
    {
        return meta == o.meta && arg == o.arg;
    }
};

static_assert(sizeof(Event) == 16, "trace events must stay 16 bytes");

constexpr std::uint64_t
makeMeta(Tick tick, EventId id)
{
    return (tick << 8) | static_cast<std::uint64_t>(id);
}

// ---- Stall pack (ThreadStallBegin/End, FetchSteal) ---------------------

enum StallCause : std::uint8_t
{
    stallNone = 0,
    stallLoad = 1,  ///< Load-class op blocking graduation.
    stallStore = 2, ///< Store-class op blocking graduation.
};

constexpr std::uint64_t
packStall(ThreadId tid, std::uint8_t cause_or_count)
{
    return static_cast<std::uint64_t>(tid) |
           (static_cast<std::uint64_t>(cause_or_count) << 8);
}

constexpr ThreadId
stallTid(std::uint64_t arg)
{
    return static_cast<ThreadId>(arg & 0xff);
}

constexpr std::uint8_t
stallCause(std::uint64_t arg)
{
    return static_cast<std::uint8_t>((arg >> 8) & 0xff);
}

// ---- Message pack (McDispatch, HandlerStart, ...) ----------------------
//
// line(32) | type(8)<<32 | src(8)<<40 | requester(8)<<48 | aux(8)<<56.
// "aux" is the requester-side MSHR id for per-node buffers and the
// dispatching node for the checker's cross-node ring.

constexpr std::uint64_t
packMsg(Addr addr, proto::MsgType type, NodeId src, NodeId requester,
        std::uint8_t aux)
{
    return ((lineAlign(addr) / l2LineBytes) & 0xffffffffull) |
           (static_cast<std::uint64_t>(type) << 32) |
           (static_cast<std::uint64_t>(src & 0xff) << 40) |
           (static_cast<std::uint64_t>(requester & 0xff) << 48) |
           (static_cast<std::uint64_t>(aux) << 56);
}

constexpr std::uint64_t
packMsg(const proto::Message &m, std::uint8_t aux)
{
    return packMsg(m.addr, m.type, m.src, m.requester, aux);
}

constexpr Addr
msgLine(std::uint64_t arg)
{
    return (arg & 0xffffffffull) * l2LineBytes;
}

constexpr proto::MsgType
msgType(std::uint64_t arg)
{
    return static_cast<proto::MsgType>((arg >> 32) & 0xff);
}

constexpr NodeId msgSrc(std::uint64_t arg) { return (arg >> 40) & 0xff; }
constexpr NodeId msgReq(std::uint64_t arg) { return (arg >> 48) & 0xff; }

constexpr std::uint8_t
msgAux(std::uint64_t arg)
{
    return static_cast<std::uint8_t>(arg >> 56);
}

// ---- Done pack (McHandlerDone) -----------------------------------------

constexpr std::uint64_t
packDone(Tick latency, proto::MsgType type)
{
    constexpr std::uint64_t cap = (1ull << 48) - 1;
    return (latency < cap ? latency : cap) |
           (static_cast<std::uint64_t>(type) << 48);
}

constexpr Tick doneLatency(std::uint64_t arg) { return arg & ((1ull << 48) - 1); }

constexpr proto::MsgType
doneType(std::uint64_t arg)
{
    return static_cast<proto::MsgType>((arg >> 48) & 0xff);
}

// ---- MSHR pack (MshrAlloc/MshrFree) ------------------------------------

constexpr std::uint64_t
packMshr(Addr line, unsigned idx, unsigned in_use)
{
    return ((lineAlign(line) / l2LineBytes) & 0xffffffffull) |
           (static_cast<std::uint64_t>(idx & 0xff) << 32) |
           (static_cast<std::uint64_t>(in_use & 0xff) << 40);
}

constexpr unsigned mshrIdx(std::uint64_t arg) { return (arg >> 32) & 0xff; }
constexpr unsigned mshrInUse(std::uint64_t arg) { return (arg >> 40) & 0xff; }

// ---- SDRAM pack (SdramAccess) ------------------------------------------

constexpr std::uint64_t
packSdram(unsigned bytes, bool write, Tick queue_delay)
{
    constexpr std::uint64_t cap = 0xffffffffull;
    return (bytes & 0xffff) |
           (static_cast<std::uint64_t>(write ? 1 : 0) << 16) |
           ((queue_delay < cap ? queue_delay : cap) << 32);
}

constexpr unsigned sdramBytes(std::uint64_t arg) { return arg & 0xffff; }
constexpr bool sdramWrite(std::uint64_t arg) { return (arg >> 16) & 1; }
constexpr Tick sdramQueueDelay(std::uint64_t arg) { return arg >> 32; }

// ---- Net pack (NetInject/NetHop/NetLand/NetDeliver) --------------------
//
// traceId(32) | type(8)<<32 | src(8)<<40 | dest(8)<<48 | vnet(8)<<56.
// The traceId is stamped at injection and rides the Message through the
// fabric, stitching the end-to-end lifetime across layers.

constexpr std::uint64_t
packNet(const proto::Message &m)
{
    return static_cast<std::uint64_t>(m.traceId) |
           (static_cast<std::uint64_t>(m.type) << 32) |
           (static_cast<std::uint64_t>(m.src & 0xff) << 40) |
           (static_cast<std::uint64_t>(m.dest & 0xff) << 48) |
           (static_cast<std::uint64_t>(proto::vnetOf(m.type)) << 56);
}

constexpr std::uint32_t
netTraceId(std::uint64_t arg)
{
    return static_cast<std::uint32_t>(arg & 0xffffffffull);
}

constexpr proto::MsgType
netType(std::uint64_t arg)
{
    return static_cast<proto::MsgType>((arg >> 32) & 0xff);
}

constexpr NodeId netSrc(std::uint64_t arg) { return (arg >> 40) & 0xff; }
constexpr NodeId netDest(std::uint64_t arg) { return (arg >> 48) & 0xff; }
constexpr std::uint8_t netVnet(std::uint64_t arg)
{
    return static_cast<std::uint8_t>(arg >> 56);
}

// ---- Back-pressure pack (NetBackpressure) ------------------------------

constexpr std::uint64_t
packBackpressure(std::uint8_t vnet, std::size_t depth)
{
    return vnet | (static_cast<std::uint64_t>(
                       depth < 0xffff ? depth : 0xffff) << 8);
}

constexpr std::uint8_t bpVnet(std::uint64_t arg)
{
    return static_cast<std::uint8_t>(arg & 0xff);
}
constexpr unsigned bpDepth(std::uint64_t arg) { return (arg >> 8) & 0xffff; }

// ---- Window pack (WindowAdvance/BarrierWait) ---------------------------

constexpr std::uint64_t
packWindow(unsigned shard, std::uint64_t value)
{
    return (shard & 0xff) |
           ((value < (1ULL << 56) ? value : (1ULL << 56) - 1) << 8);
}

constexpr unsigned windowShard(std::uint64_t arg)
{
    return static_cast<unsigned>(arg & 0xff);
}
constexpr std::uint64_t windowValue(std::uint64_t arg) { return arg >> 8; }

// ---- Exec pack (HandlerExec: the checker ring's annotation event) ------

constexpr std::uint64_t
packExec(std::size_t insts, std::size_t sends, std::uint16_t ack,
         std::uint8_t mshr, NodeId node)
{
    auto clamp16 = [](std::size_t v) -> std::uint64_t {
        return v < 0xffff ? v : 0xffff;
    };
    return clamp16(insts) | (clamp16(sends) << 16) |
           (static_cast<std::uint64_t>(ack) << 32) |
           (static_cast<std::uint64_t>(mshr) << 48) |
           (static_cast<std::uint64_t>(node & 0xff) << 56);
}

constexpr unsigned execInsts(std::uint64_t arg) { return arg & 0xffff; }
constexpr unsigned execSends(std::uint64_t arg) { return (arg >> 16) & 0xffff; }
constexpr unsigned execAck(std::uint64_t arg) { return (arg >> 32) & 0xffff; }
constexpr unsigned execMshr(std::uint64_t arg) { return (arg >> 48) & 0xff; }
constexpr NodeId execNode(std::uint64_t arg) { return (arg >> 56) & 0xff; }

// ---- Req pack (ReqRetire: server request kinds + latency) --------------

/** Request kinds carried in ReqRetire events. */
enum class ReqKind : std::uint8_t
{
    Queue = 0, ///< queue-server work item (birth at push, retire at pop).
    Kv = 1,    ///< kv-store request batch.
    Txn = 2,   ///< spec-txn committed transaction.
};

constexpr std::uint64_t
packReq(ReqKind kind, Tick latency, NodeId node)
{
    return (static_cast<std::uint64_t>(kind) & 0xf) |
           ((latency < (1ULL << 48) ? latency : (1ULL << 48) - 1) << 4) |
           (static_cast<std::uint64_t>(node & 0xff) << 52);
}

constexpr ReqKind reqKind(std::uint64_t arg)
{
    return static_cast<ReqKind>(arg & 0xf);
}
constexpr Tick reqLatency(std::uint64_t arg)
{
    return (arg >> 4) & ((1ULL << 48) - 1);
}
constexpr NodeId reqNode(std::uint64_t arg) { return (arg >> 52) & 0xff; }

std::string_view reqKindName(ReqKind k);

// ---- Txn pack (TxnCommit/TxnAbort) -------------------------------------

constexpr std::uint64_t
packTxn(NodeId node, std::uint64_t aborts)
{
    return (node & 0xff) |
           ((aborts < (1ULL << 56) ? aborts : (1ULL << 56) - 1) << 8);
}

constexpr NodeId txnNode(std::uint64_t arg) { return arg & 0xff; }
constexpr std::uint64_t txnAborts(std::uint64_t arg) { return arg >> 8; }

// ---- Ecc pack (FaultEccCorrect/FaultEccDetect) -------------------------

constexpr std::uint64_t
packEcc(NodeId node, bool dbl)
{
    return static_cast<std::uint64_t>(node & 0xff) |
           (static_cast<std::uint64_t>(dbl ? 1 : 0) << 8);
}

constexpr NodeId eccNode(std::uint64_t arg) { return arg & 0xff; }
constexpr bool eccDouble(std::uint64_t arg) { return (arg >> 8) & 1; }

// ---- Retry pack (FaultRetryBackoff/FaultStarvation) --------------------
//
// line(32) | retries(16)<<32 | mshr(8)<<48 | node(8)<<56.

constexpr std::uint64_t
packRetry(Addr line, unsigned retries, std::uint8_t mshr, NodeId node)
{
    return ((lineAlign(line) / l2LineBytes) & 0xffffffffull) |
           (static_cast<std::uint64_t>(retries & 0xffff) << 32) |
           (static_cast<std::uint64_t>(mshr) << 48) |
           (static_cast<std::uint64_t>(node & 0xff) << 56);
}

constexpr Addr retryLine(std::uint64_t arg)
{
    return (arg & 0xffffffffull) * l2LineBytes;
}
constexpr unsigned retryCount(std::uint64_t arg) { return (arg >> 32) & 0xffff; }
constexpr std::uint8_t retryMshr(std::uint64_t arg)
{
    return static_cast<std::uint8_t>((arg >> 48) & 0xff);
}
constexpr NodeId retryNode(std::uint64_t arg) { return (arg >> 56) & 0xff; }

/**
 * Decode @p e into @p buf as one human-readable line (no newline).
 * Shared by the watchdog wedge report and trace_report --dump.
 */
void formatEvent(const Event &e, char *buf, std::size_t len);

/** fprintf one decoded event line (with trailing newline). */
void printEvent(std::FILE *out, const Event &e);

} // namespace smtp::trace

#endif // SMTP_TRACE_EVENTS_HPP
