#include "trace/trace.hpp"

#include "trace/export.hpp"

namespace smtp::trace
{

void
TraceBuffer::dumpTail(std::FILE *out, std::size_t max) const
{
    const std::size_t have = stored();
    const std::size_t n = have < max ? have : max;
    const std::size_t start = recorded_ < ring_.size() ? 0 : head_;
    const std::size_t skip = have - n;
    if (recorded_ > n) {
        std::fprintf(out, "  ... %llu earlier event(s) %s\n",
                     static_cast<unsigned long long>(recorded_ - n),
                     recorded_ > ring_.size() ? "(ring wrapped)"
                                              : "(omitted)");
    }
    for (std::size_t i = 0; i < n; ++i)
        printEvent(out, ring_[(start + skip + i) % ring_.size()]);
}

TraceBuffer *
TraceManager::createBuffer(std::string name, NodeId node,
                           Category category)
{
    if ((cfg_.categories & categoryBit(category)) == 0)
        return nullptr;
    buffers_.push_back(std::make_unique<TraceBuffer>(
        std::move(name), node, category, cfg_.bufferEvents));
    return buffers_.back().get();
}

void
TraceManager::snapshot(TraceData &out, Tick exec_ticks,
                       unsigned nodes) const
{
    out.execTicks = exec_ticks;
    out.nodes = nodes;
    out.intervalTicks = sampler_.interval();
    out.buffers.clear();
    out.buffers.reserve(buffers_.size());
    for (const auto &b : buffers_) {
        out.buffers.emplace_back();
        TraceData::Buffer &dst = out.buffers.back();
        dst.name = b->name();
        dst.node = b->node();
        dst.category = static_cast<std::uint8_t>(b->category());
        dst.recorded = b->recorded();
        b->snapshot(dst.events);
    }
    out.seriesNames = sampler_.names();
    out.sampleTicks = sampler_.ticks();
    out.samples = sampler_.values();
}

void
TraceManager::dumpTails(std::FILE *out, std::size_t per_buffer) const
{
    for (const auto &b : buffers_) {
        if (b->recorded() == 0)
            continue;
        std::fprintf(out, "-- trace n%u.%s (%llu event(s)) --\n",
                     unsigned(b->node()), b->name().c_str(),
                     static_cast<unsigned long long>(b->recorded()));
        b->dumpTail(out, per_buffer);
    }
}

} // namespace smtp::trace
