/**
 * @file
 * Interval stats engine: samples registered probes (closures over live
 * Counters/Distributions/occupancy getters) into an in-memory time
 * series, driven inline from the machine's run loop.
 *
 * Deliberately not event-queue based: scheduling sampler events would
 * advance simulated time past the workload's natural end (the run
 * loop's all-done check fires every 512 events) and perturb measured
 * execution times. sampleUpTo() is called between events instead; when
 * the current tick crosses the next boundary, one row is recorded and
 * the boundary advances past "now" — so long idle gaps cost one row,
 * not one per period.
 */

#ifndef SMTP_TRACE_INTERVAL_HPP
#define SMTP_TRACE_INTERVAL_HPP

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "snap/snap.hpp"

namespace smtp::trace
{

class IntervalSampler
{
  public:
    using ProbeFn = std::function<double()>;

    void
    addProbe(std::string name, ProbeFn fn)
    {
        names_.push_back(std::move(name));
        probes_.push_back(std::move(fn));
    }

    /** Arm with a period in ticks; first row records at @p interval. */
    void
    start(Tick interval)
    {
        interval_ = interval;
        next_ = interval;
    }

    bool active() const { return interval_ != 0 && !probes_.empty(); }

    /** Hot-path check: record one row if @p now crossed the boundary. */
    void
    sampleUpTo(Tick now)
    {
        if (now >= next_)
            sampleRow(now);
    }

    const std::vector<std::string> &names() const { return names_; }
    std::size_t rows() const { return ticks_.size(); }
    Tick rowTick(std::size_t row) const { return ticks_[row]; }

    double
    value(std::size_t row, std::size_t series) const
    {
        return values_[row * names_.size() + series];
    }

    const std::vector<Tick> &ticks() const { return ticks_; }
    const std::vector<double> &values() const { return values_; }
    Tick interval() const { return interval_; }

    // ---- Snapshot support --------------------------------------------
    //
    // Probes and their names are wired up at machine construction (same
    // config => same probe list), so only the recorded rows and the
    // next-boundary cursor persist. The probe count is stored for
    // validation.

    void
    saveState(snap::Ser &out) const
    {
        out.u64(names_.size());
        out.u64(interval_);
        out.u64(next_);
        out.u64(ticks_.size());
        for (Tick t : ticks_)
            out.u64(t);
        for (double v : values_)
            out.f64(v);
    }

    void
    restoreState(snap::Des &in)
    {
        if (in.u64() != names_.size()) {
            in.fail("corrupt snapshot: interval sampler probe count "
                    "mismatch");
            return;
        }
        interval_ = in.u64();
        next_ = in.u64();
        std::uint64_t rows = in.count(8);
        if (!in.ok() || rows > maxRows_) {
            in.fail("corrupt snapshot: interval sampler row count out "
                    "of range");
            return;
        }
        ticks_.clear();
        ticks_.reserve(rows);
        for (std::uint64_t i = 0; in.ok() && i < rows; ++i)
            ticks_.push_back(in.u64());
        values_.clear();
        values_.reserve(rows * names_.size());
        for (std::uint64_t i = 0; in.ok() && i < rows * names_.size();
             ++i)
            values_.push_back(in.f64());
    }

  private:
    void
    sampleRow(Tick now)
    {
        if (ticks_.size() < maxRows_) {
            ticks_.push_back(now);
            for (const auto &p : probes_)
                values_.push_back(p());
        }
        // Advance past now so one crossing yields one row.
        next_ += interval_ * ((now - next_) / interval_ + 1);
    }

    static constexpr std::size_t maxRows_ = 1u << 20;

    std::vector<std::string> names_;
    std::vector<ProbeFn> probes_;
    std::vector<Tick> ticks_;
    std::vector<double> values_; ///< rows() * names().size(), row-major.
    Tick interval_ = 0;
    Tick next_ = maxTick;
};

} // namespace smtp::trace

#endif // SMTP_TRACE_INTERVAL_HPP
