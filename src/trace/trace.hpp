/**
 * @file
 * Always-on telemetry core: fixed-capacity, allocation-free binary ring
 * buffers of 16-byte trace events, owned per component, plus the
 * manager that creates them under a runtime category mask.
 *
 * Cost discipline (same contract as src/check's CheckLevel):
 *
 *  - compiled out: build with -DSMTP_TRACE=OFF (sets
 *    SMTP_TRACE_ENABLED=0) and every SMTP_TRACE_EVENT expands to
 *    nothing — zero code on the hot path. TraceBuffer itself stays
 *    available for direct callers (the checker's dispatch ring).
 *  - compiled in, disabled: components hold a null TraceBuffer
 *    pointer; each macro is one pointer test. No buffers, no memory.
 *  - enabled: recording is two stores into a preallocated ring. The
 *    simulation schedule is never touched — tracing on/off produces
 *    bit-identical timing.
 */

#ifndef SMTP_TRACE_TRACE_HPP
#define SMTP_TRACE_TRACE_HPP

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "snap/snap.hpp"
#include "trace/events.hpp"
#include "trace/interval.hpp"

/** Compile-time kill switch (CMake option SMTP_TRACE, default ON). */
#ifndef SMTP_TRACE_ENABLED
#define SMTP_TRACE_ENABLED 1
#endif

#if SMTP_TRACE_ENABLED
#define SMTP_TRACE_EVENT(buf, tick, id, arg)                              \
    do {                                                                  \
        if ((buf) != nullptr)                                             \
            (buf)->record((tick), (id), (arg));                           \
    } while (0)
#else
#define SMTP_TRACE_EVENT(buf, tick, id, arg)                              \
    do {                                                                  \
    } while (0)
#endif

namespace smtp::trace
{

/** True when instrumentation macros are compiled in. */
inline constexpr bool compiledIn = SMTP_TRACE_ENABLED != 0;

/**
 * Fixed-capacity event ring. Overwrites oldest on overflow; recorded()
 * keeps the true total so exporters can report drops.
 */
class TraceBuffer
{
  public:
    TraceBuffer(std::string name, NodeId node, Category category,
                std::size_t capacity)
        : name_(std::move(name)), node_(node), category_(category),
          ring_(capacity > 0 ? capacity : 1)
    {
    }

    void
    record(Tick tick, EventId id, std::uint64_t arg)
    {
        Event &e = ring_[head_];
        e.meta = makeMeta(tick, id);
        e.arg = arg;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        ++recorded_;
    }

    const std::string &name() const { return name_; }
    NodeId node() const { return node_; }
    Category category() const { return category_; }
    std::size_t capacity() const { return ring_.size(); }

    /** Events recorded over the run (>= stored => the ring wrapped). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events currently held. */
    std::size_t
    stored() const
    {
        return recorded_ < ring_.size()
                   ? static_cast<std::size_t>(recorded_)
                   : ring_.size();
    }

    /** Copy the stored events, oldest first, into @p out (appended). */
    void
    snapshot(std::vector<Event> &out) const
    {
        const std::size_t n = stored();
        const std::size_t start =
            recorded_ < ring_.size() ? 0 : head_;
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(ring_[(start + i) % ring_.size()]);
    }

    /** Print the newest @p max events, oldest first (wedge reports). */
    void dumpTail(std::FILE *out, std::size_t max) const;

    // ---- Snapshot support --------------------------------------------
    //
    // The stored events are written oldest-first (normalized), so the
    // on-disk form is independent of where the ring happened to wrap.
    // Restore lays them back from slot 0; exports and subsequent
    // recording behave identically either way.

    void
    saveState(snap::Ser &out) const
    {
        out.u64(recorded_);
        const std::size_t n = stored();
        const std::size_t start = recorded_ < ring_.size() ? 0 : head_;
        out.u64(n);
        for (std::size_t i = 0; i < n; ++i) {
            const Event &e = ring_[(start + i) % ring_.size()];
            out.u64(e.meta);
            out.u64(e.arg);
        }
    }

    void
    restoreState(snap::Des &in)
    {
        recorded_ = in.u64();
        std::uint64_t n = in.count(16);
        std::uint64_t expect = recorded_ < ring_.size()
                                   ? recorded_
                                   : static_cast<std::uint64_t>(
                                         ring_.size());
        if (!in.ok() || n != expect) {
            in.fail("corrupt snapshot: trace ring event count does not "
                    "match its cursor (capacity mismatch?)");
            return;
        }
        for (std::size_t i = 0; in.ok() && i < n; ++i) {
            ring_[i].meta = in.u64();
            ring_[i].arg = in.u64();
        }
        head_ = n == ring_.size() ? 0 : static_cast<std::size_t>(n);
    }

  private:
    std::string name_;
    NodeId node_;
    Category category_;
    std::vector<Event> ring_;
    std::size_t head_ = 0; ///< Next slot to overwrite.
    std::uint64_t recorded_ = 0;
};

struct TraceConfig
{
    bool enabled = false;
    /** Bitmask over Category; a masked-off class gets no buffers. */
    std::uint32_t categories = allCategories;
    /** Ring capacity, in events, of each component buffer. */
    std::size_t bufferEvents = 1 << 15;
    /**
     * Interval-sampling period in CPU cycles (0 disables the time
     * series). Sampling piggybacks on the machine's run loop — it
     * schedules nothing, so the event stream is unperturbed.
     */
    Cycles intervalCycles = 20000;
};

struct TraceData;

/**
 * Owns every component TraceBuffer of one machine plus the interval
 * sampler. Buffer creation order is deterministic (node-major, then
 * cpu/proto/mc/net), which fixes exporter track order.
 */
class TraceManager
{
  public:
    explicit TraceManager(const TraceConfig &cfg) : cfg_(cfg) {}

    const TraceConfig &config() const { return cfg_; }

    /**
     * Create (and own) a buffer, or return nullptr when @p category is
     * masked off — the null pointer then keeps every record site free.
     */
    TraceBuffer *createBuffer(std::string name, NodeId node,
                              Category category);

    const std::vector<std::unique_ptr<TraceBuffer>> &
    buffers() const
    {
        return buffers_;
    }

    IntervalSampler &sampler() { return sampler_; }
    const IntervalSampler &sampler() const { return sampler_; }

    /** Copy all buffers + time series into an exportable snapshot. */
    void snapshot(TraceData &out, Tick exec_ticks, unsigned nodes) const;

    /** Print the newest @p per_buffer events of every buffer. */
    void dumpTails(std::FILE *out, std::size_t per_buffer) const;

    // ---- Snapshot support --------------------------------------------
    //
    // Buffer creation order is deterministic for a given config, so the
    // buffers serialize positionally; names are stored only to validate
    // that the restoring machine built the same buffer list.

    void
    saveState(snap::Ser &out) const
    {
        out.u64(buffers_.size());
        for (const auto &b : buffers_) {
            out.str(b->name());
            b->saveState(out);
        }
        sampler_.saveState(out);
    }

    void
    restoreState(snap::Des &in)
    {
        if (in.u64() != buffers_.size()) {
            in.fail("corrupt snapshot: trace buffer count mismatch "
                    "(was the snapshot taken under a different trace "
                    "config?)");
            return;
        }
        for (auto &b : buffers_) {
            if (in.str() != b->name()) {
                in.fail("corrupt snapshot: trace buffer order/name "
                        "mismatch");
                return;
            }
            b->restoreState(in);
            if (!in.ok())
                return;
        }
        sampler_.restoreState(in);
    }

  private:
    TraceConfig cfg_;
    std::vector<std::unique_ptr<TraceBuffer>> buffers_;
    IntervalSampler sampler_;
};

} // namespace smtp::trace

#endif // SMTP_TRACE_TRACE_HPP
