#include "trace/export.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <set>

namespace smtp::trace
{

namespace
{

constexpr char binaryMagic[8] = {'S', 'M', 'T', 'P', 'T', 'R', 'C', '1'};
// v2 appends the protocol-variant name to the header; v1 captures
// (no protocol field) still read back, with protocol left empty.
constexpr std::uint32_t binaryVersion = 2;

/** Picosecond tick -> "<us>.<frac3>" microseconds, integer math only. */
void
formatUs(Tick tick, char *buf, std::size_t len)
{
    std::snprintf(buf, len, "%llu.%03llu",
                  static_cast<unsigned long long>(tick / tickPerUs),
                  static_cast<unsigned long long>((tick % tickPerUs) /
                                                  tickPerNs));
}

/**
 * Deterministic numeric formatting for the CSV: counters (integral
 * doubles) print exact, everything else fixed 6 decimals.
 */
void
formatValue(double v, char *buf, std::size_t len)
{
    double integral;
    if (std::modf(v, &integral) == 0.0 && std::fabs(v) < 9.0e15) {
        std::snprintf(buf, len, "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(buf, len, "%.6f", v);
    }
}

/** Perfetto tid layout: 32 ids per buffer; CPU stalls fan per thread. */
constexpr unsigned tidStride = 32;

unsigned
eventTid(unsigned base, const Event &e)
{
    switch (e.id()) {
      case EventId::ThreadStallBegin:
      case EventId::ThreadStallEnd:
        return base + 1 + stallTid(e.arg);
      default:
        return base;
    }
}

std::string
trackName(const TraceData::Buffer &b, unsigned base, unsigned tid)
{
    if (tid == base)
        return b.name;
    return b.name + ".t" + std::to_string(tid - base - 1);
}

struct JsonEmitter
{
    std::ostream &os;
    bool first = true;

    void
    raw(const std::string &line)
    {
        if (!first)
            os << ",\n";
        first = false;
        os << line;
    }
};

std::string
instantName(const Event &e)
{
    std::string name(eventName(e.id()));
    switch (e.id()) {
      case EventId::HandlerStart:
      case EventId::HandlerRetire:
      case EventId::McDispatch:
      case EventId::McNak:
      case EventId::McProbeDefer:
        name += " ";
        name += proto::msgTypeName(msgType(e.arg));
        break;
      case EventId::McHandlerDone:
        name += " ";
        name += proto::msgTypeName(doneType(e.arg));
        break;
      case EventId::NetInject:
      case EventId::NetHop:
      case EventId::NetLand:
      case EventId::NetDeliver:
        name += " ";
        name += proto::msgTypeName(netType(e.arg));
        break;
      default:
        break;
    }
    return name;
}

} // namespace

void
writePerfetto(const TraceData &data, std::ostream &os)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    JsonEmitter out{os};
    char buf[256];
    char ts[48];

    // Process metadata: one "process" per node, sorted by node id.
    std::set<unsigned> nodes_seen;
    for (const auto &b : data.buffers)
        nodes_seen.insert(b.node);
    for (unsigned n : nodes_seen) {
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                      "\"args\":{\"name\":\"node%u\"}}",
                      n, n);
        out.raw(buf);
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"M\",\"pid\":%u,"
                      "\"name\":\"process_sort_index\","
                      "\"args\":{\"sort_index\":%u}}",
                      n, n);
        out.raw(buf);
    }

    // Track (thread) metadata: buffer creation order fixes the base
    // tids; per-thread stall subtracks are discovered from the events.
    std::map<unsigned, unsigned> next_base; // node -> next base tid
    std::vector<unsigned> bases(data.buffers.size());
    for (std::size_t i = 0; i < data.buffers.size(); ++i) {
        const auto &b = data.buffers[i];
        unsigned base = next_base[b.node];
        next_base[b.node] = base + tidStride;
        bases[i] = base;

        std::set<unsigned> tids;
        tids.insert(base);
        for (const auto &e : b.events)
            tids.insert(eventTid(base, e));
        for (unsigned tid : tids) {
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                          "\"name\":\"thread_name\","
                          "\"args\":{\"name\":\"%s\"}}",
                          unsigned(b.node), tid,
                          trackName(b, base, tid).c_str());
            out.raw(buf);
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                          "\"name\":\"thread_sort_index\","
                          "\"args\":{\"sort_index\":%u}}",
                          unsigned(b.node), tid, tid);
            out.raw(buf);
        }
    }

    // Events, per buffer in stored (chronological) order.
    for (std::size_t i = 0; i < data.buffers.size(); ++i) {
        const auto &b = data.buffers[i];
        const unsigned pid = b.node;
        for (const auto &e : b.events) {
            const unsigned tid = eventTid(bases[i], e);
            formatUs(e.tick(), ts, sizeof(ts));
            switch (e.id()) {
              case EventId::ThreadStallBegin:
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"B\",\"pid\":%u,\"tid\":%u,"
                              "\"ts\":%s,\"cat\":\"cpu\","
                              "\"name\":\"stall.%s\"}",
                              pid, tid, ts,
                              stallCause(e.arg) == stallStore ? "store"
                                                              : "load");
                out.raw(buf);
                break;
              case EventId::ThreadStallEnd:
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"E\",\"pid\":%u,\"tid\":%u,"
                              "\"ts\":%s}",
                              pid, tid, ts);
                out.raw(buf);
                break;
              case EventId::ProtoBusyBegin:
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"B\",\"pid\":%u,\"tid\":%u,"
                              "\"ts\":%s,\"cat\":\"proto\","
                              "\"name\":\"proto.busy\"}",
                              pid, tid, ts);
                out.raw(buf);
                break;
              case EventId::ProtoBusyEnd:
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"E\",\"pid\":%u,\"tid\":%u,"
                              "\"ts\":%s}",
                              pid, tid, ts);
                out.raw(buf);
                break;
              default:
                std::snprintf(buf, sizeof(buf),
                              "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,"
                              "\"tid\":%u,\"ts\":%s,\"cat\":\"%s\","
                              "\"name\":\"%s\","
                              "\"args\":{\"a\":\"0x%llx\"}}",
                              pid, tid, ts,
                              categoryName(static_cast<Category>(
                                               b.category))
                                  .data(),
                              instantName(e).c_str(),
                              static_cast<unsigned long long>(e.arg));
                out.raw(buf);
                break;
            }
        }
    }
    os << "\n]}\n";
}

void
writeIntervalCsv(const TraceData &data, std::ostream &os)
{
    os << "tick_ps,us";
    for (const auto &name : data.seriesNames)
        os << "," << name;
    os << "\n";
    const std::size_t cols = data.seriesNames.size();
    char ts[48];
    char val[48];
    for (std::size_t r = 0; r < data.sampleTicks.size(); ++r) {
        formatUs(data.sampleTicks[r], ts, sizeof(ts));
        os << data.sampleTicks[r] << "," << ts;
        for (std::size_t c = 0; c < cols; ++c) {
            formatValue(data.samples[r * cols + c], val, sizeof(val));
            os << "," << val;
        }
        os << "\n";
    }
}

namespace
{

template <typename T>
bool
writeRaw(std::FILE *f, const T &v)
{
    return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

bool
writeString(std::FILE *f, const std::string &s)
{
    auto len = static_cast<std::uint32_t>(s.size());
    if (!writeRaw(f, len))
        return false;
    return len == 0 || std::fwrite(s.data(), 1, len, f) == len;
}

template <typename T>
bool
readRaw(std::FILE *f, T &v)
{
    return std::fread(&v, sizeof(T), 1, f) == 1;
}

bool
readString(std::FILE *f, std::string &s, std::uint32_t max_len)
{
    std::uint32_t len = 0;
    if (!readRaw(f, len) || len > max_len)
        return false;
    s.resize(len);
    return len == 0 || std::fread(s.data(), 1, len, f) == len;
}

} // namespace

bool
writeBinary(const TraceData &data, std::FILE *f)
{
    if (std::fwrite(binaryMagic, 1, sizeof(binaryMagic), f) !=
        sizeof(binaryMagic))
        return false;
    bool ok = writeRaw(f, binaryVersion) && writeRaw(f, data.nodes) &&
              writeRaw(f, data.execTicks) &&
              writeRaw(f, data.intervalTicks) &&
              writeString(f, data.protocol);
    ok = ok &&
         writeRaw(f, static_cast<std::uint32_t>(data.buffers.size())) &&
         writeRaw(f,
                  static_cast<std::uint32_t>(data.seriesNames.size())) &&
         writeRaw(f, static_cast<std::uint64_t>(data.sampleTicks.size()));
    if (!ok)
        return false;
    for (const auto &b : data.buffers) {
        if (!writeString(f, b.name) || !writeRaw(f, b.node) ||
            !writeRaw(f, b.category) ||
            !writeRaw(f, std::uint8_t{0}) || !writeRaw(f, b.recorded) ||
            !writeRaw(f, static_cast<std::uint64_t>(b.events.size())))
            return false;
        if (!b.events.empty() &&
            std::fwrite(b.events.data(), sizeof(Event), b.events.size(),
                        f) != b.events.size())
            return false;
    }
    for (const auto &name : data.seriesNames)
        if (!writeString(f, name))
            return false;
    if (!data.sampleTicks.empty() &&
        std::fwrite(data.sampleTicks.data(), sizeof(Tick),
                    data.sampleTicks.size(), f) != data.sampleTicks.size())
        return false;
    if (!data.samples.empty() &&
        std::fwrite(data.samples.data(), sizeof(double),
                    data.samples.size(), f) != data.samples.size())
        return false;
    return true;
}

bool
readTrace(const std::string &path, TraceData &out, std::string &err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        err = "cannot open " + path;
        return false;
    }
    auto fail = [&](const char *what) {
        err = path + ": " + what;
        std::fclose(f);
        return false;
    };

    char magic[8];
    if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
        std::memcmp(magic, binaryMagic, sizeof(magic)) != 0)
        return fail("not a SMTPTRC1 trace");
    std::uint32_t version = 0;
    if (!readRaw(f, version) || version < 1 || version > binaryVersion)
        return fail("unsupported trace version");

    std::uint32_t buffer_count = 0, series_count = 0;
    std::uint64_t rows = 0;
    if (!readRaw(f, out.nodes) || !readRaw(f, out.execTicks) ||
        !readRaw(f, out.intervalTicks))
        return fail("truncated header");
    out.protocol.clear();
    if (version >= 2 && !readString(f, out.protocol, 64))
        return fail("truncated protocol name");
    if (!readRaw(f, buffer_count) || !readRaw(f, series_count) ||
        !readRaw(f, rows))
        return fail("truncated header");
    if (buffer_count > 4096 || series_count > 65536 ||
        rows > (1ull << 24))
        return fail("implausible header counts");

    out.buffers.clear();
    out.buffers.resize(buffer_count);
    for (auto &b : out.buffers) {
        std::uint8_t pad = 0;
        std::uint64_t stored = 0;
        if (!readString(f, b.name, 4096) || !readRaw(f, b.node) ||
            !readRaw(f, b.category) || !readRaw(f, pad) ||
            !readRaw(f, b.recorded) || !readRaw(f, stored))
            return fail("truncated buffer header");
        if (stored > (1ull << 28))
            return fail("implausible buffer size");
        b.events.resize(stored);
        if (stored != 0 &&
            std::fread(b.events.data(), sizeof(Event), stored, f) !=
                stored)
            return fail("truncated buffer events");
    }
    out.seriesNames.clear();
    out.seriesNames.resize(series_count);
    for (auto &name : out.seriesNames)
        if (!readString(f, name, 4096))
            return fail("truncated series name");
    out.sampleTicks.resize(rows);
    if (rows != 0 && std::fread(out.sampleTicks.data(), sizeof(Tick),
                                rows, f) != rows)
        return fail("truncated sample ticks");
    out.samples.resize(rows * series_count);
    if (!out.samples.empty() &&
        std::fread(out.samples.data(), sizeof(double), out.samples.size(),
                   f) != out.samples.size())
        return fail("truncated samples");
    std::fclose(f);
    return true;
}

bool
writeTraceFiles(const TraceData &data, const std::string &stem,
                std::string *err)
{
    auto set_err = [&](const std::string &msg) {
        if (err != nullptr)
            *err = msg;
        return false;
    };
    std::FILE *bin = std::fopen((stem + ".smtptrace").c_str(), "wb");
    if (bin == nullptr)
        return set_err("cannot open " + stem + ".smtptrace");
    bool ok = writeBinary(data, bin);
    std::fclose(bin);
    if (!ok)
        return set_err("write failed for " + stem + ".smtptrace");

    std::ofstream json(stem + ".json", std::ios::binary);
    if (!json)
        return set_err("cannot open " + stem + ".json");
    writePerfetto(data, json);

    std::ofstream csv(stem + ".csv", std::ios::binary);
    if (!csv)
        return set_err("cannot open " + stem + ".csv");
    writeIntervalCsv(data, csv);
    return true;
}

} // namespace smtp::trace
