#include "trace/events.hpp"

#include <cinttypes>
#include <string>

namespace smtp::trace
{

std::string_view
categoryName(Category c)
{
    switch (c) {
      case Category::Cpu: return "cpu";
      case Category::Protocol: return "proto";
      case Category::Mem: return "mem";
      case Category::Network: return "net";
      case Category::Check: return "check";
      case Category::Fault: return "fault";
      case Category::Exec: return "exec";
      case Category::Workload: return "wl";
      case Category::NumCategories: break;
    }
    return "?";
}

std::string_view
eventName(EventId id)
{
    switch (id) {
      case EventId::None: return "none";
      case EventId::ThreadStallBegin: return "stall.begin";
      case EventId::ThreadStallEnd: return "stall.end";
      case EventId::FetchSteal: return "fetch.steal";
      case EventId::ProtoBusyBegin: return "proto.busy.begin";
      case EventId::ProtoBusyEnd: return "proto.busy.end";
      case EventId::HandlerStart: return "handler.start";
      case EventId::HandlerRetire: return "handler.retire";
      case EventId::McDispatch: return "mc.dispatch";
      case EventId::McHandlerDone: return "mc.done";
      case EventId::McNak: return "mc.nak";
      case EventId::McProbeDefer: return "mc.probe.defer";
      case EventId::MshrAlloc: return "mshr.alloc";
      case EventId::MshrFree: return "mshr.free";
      case EventId::SdramAccess: return "sdram.access";
      case EventId::NetInject: return "net.inject";
      case EventId::NetHop: return "net.hop";
      case EventId::NetLand: return "net.land";
      case EventId::NetDeliver: return "net.deliver";
      case EventId::NetBackpressure: return "net.backpressure";
      case EventId::HandlerExec: return "handler.exec";
      case EventId::FaultNetDrop: return "fault.net.drop";
      case EventId::FaultNetDup: return "fault.net.dup";
      case EventId::FaultNetDelay: return "fault.net.delay";
      case EventId::FaultNetReorder: return "fault.net.reorder";
      case EventId::FaultNetLost: return "fault.net.lost";
      case EventId::FaultEccCorrect: return "fault.ecc.correct";
      case EventId::FaultEccDetect: return "fault.ecc.detect";
      case EventId::FaultForcedNak: return "fault.nak.forced";
      case EventId::FaultRetryBackoff: return "fault.retry";
      case EventId::FaultStarvation: return "fault.starve";
      case EventId::WindowAdvance: return "exec.window";
      case EventId::BarrierWait: return "exec.barrier";
      case EventId::ReqRetire: return "req.retire";
      case EventId::TxnCommit: return "txn.commit";
      case EventId::TxnAbort: return "txn.abort";
      case EventId::NumEvents: break;
    }
    return "?";
}

std::string_view
reqKindName(ReqKind k)
{
    switch (k) {
      case ReqKind::Queue: return "queue";
      case ReqKind::Kv: return "kv";
      case ReqKind::Txn: return "txn";
    }
    return "?";
}

namespace
{

const char *
typeCStr(proto::MsgType t)
{
    // msgTypeName returns a string_view over a static literal, so the
    // pointer stays valid for the caller's fprintf.
    return proto::msgTypeName(t).data();
}

} // namespace

void
formatEvent(const Event &e, char *buf, std::size_t len)
{
    const std::uint64_t a = e.arg;
    const auto tick = static_cast<unsigned long long>(e.tick());
    const char *name = eventName(e.id()).data();
    switch (e.id()) {
      case EventId::ThreadStallBegin:
      case EventId::ThreadStallEnd:
        std::snprintf(buf, len, "[%llu] %-16s t%u cause=%s", tick, name,
                      unsigned(stallTid(a)),
                      stallCause(a) == stallStore ? "store" : "load");
        break;
      case EventId::FetchSteal:
        std::snprintf(buf, len, "[%llu] %-16s t%u ops=%u", tick, name,
                      unsigned(stallTid(a)), unsigned(stallCause(a)));
        break;
      case EventId::ProtoBusyBegin:
      case EventId::ProtoBusyEnd:
        std::snprintf(buf, len, "[%llu] %-16s", tick, name);
        break;
      case EventId::HandlerStart:
      case EventId::HandlerRetire:
      case EventId::McDispatch:
      case EventId::McNak:
      case EventId::McProbeDefer:
        std::snprintf(buf, len,
                      "[%llu] %-16s %-14s addr=%llx src=%u req=%u x=%u",
                      tick, name, typeCStr(msgType(a)),
                      static_cast<unsigned long long>(msgLine(a)),
                      unsigned(msgSrc(a)), unsigned(msgReq(a)),
                      unsigned(msgAux(a)));
        break;
      case EventId::McHandlerDone:
        std::snprintf(buf, len, "[%llu] %-16s %-14s latency=%llu", tick,
                      name, typeCStr(doneType(a)),
                      static_cast<unsigned long long>(doneLatency(a)));
        break;
      case EventId::MshrAlloc:
      case EventId::MshrFree:
        std::snprintf(buf, len, "[%llu] %-16s line=%llx idx=%u inUse=%u",
                      tick, name,
                      static_cast<unsigned long long>(msgLine(a)),
                      mshrIdx(a), mshrInUse(a));
        break;
      case EventId::SdramAccess:
        std::snprintf(buf, len, "[%llu] %-16s %s bytes=%u qdelay=%llu",
                      tick, name, sdramWrite(a) ? "write" : "read",
                      sdramBytes(a),
                      static_cast<unsigned long long>(sdramQueueDelay(a)));
        break;
      case EventId::NetInject:
      case EventId::NetHop:
      case EventId::NetLand:
      case EventId::NetDeliver:
      case EventId::FaultNetDrop:
      case EventId::FaultNetDup:
      case EventId::FaultNetDelay:
      case EventId::FaultNetReorder:
      case EventId::FaultNetLost:
        std::snprintf(buf, len,
                      "[%llu] %-16s %-14s id=%u %u->%u vnet%u", tick, name,
                      typeCStr(netType(a)), netTraceId(a),
                      unsigned(netSrc(a)), unsigned(netDest(a)),
                      unsigned(netVnet(a)));
        break;
      case EventId::NetBackpressure:
        std::snprintf(buf, len, "[%llu] %-16s vnet%u depth=%u", tick, name,
                      unsigned(bpVnet(a)), bpDepth(a));
        break;
      case EventId::HandlerExec:
        std::snprintf(buf, len,
                      "[%llu] %-16s n%u insts=%u sends=%u ack=%u mshr=%u",
                      tick, name, unsigned(execNode(a)), execInsts(a),
                      execSends(a), execAck(a), execMshr(a));
        break;
      case EventId::FaultEccCorrect:
      case EventId::FaultEccDetect:
        std::snprintf(buf, len, "[%llu] %-16s n%u %s", tick, name,
                      unsigned(eccNode(a)),
                      eccDouble(a) ? "double-bit" : "single-bit");
        break;
      case EventId::FaultForcedNak:
        std::snprintf(buf, len,
                      "[%llu] %-16s %-14s addr=%llx src=%u req=%u x=%u",
                      tick, name, typeCStr(msgType(a)),
                      static_cast<unsigned long long>(msgLine(a)),
                      unsigned(msgSrc(a)), unsigned(msgReq(a)),
                      unsigned(msgAux(a)));
        break;
      case EventId::FaultRetryBackoff:
      case EventId::FaultStarvation:
        std::snprintf(buf, len,
                      "[%llu] %-16s n%u line=%llx mshr=%u retries=%u",
                      tick, name, unsigned(retryNode(a)),
                      static_cast<unsigned long long>(retryLine(a)),
                      unsigned(retryMshr(a)), retryCount(a));
        break;
      case EventId::WindowAdvance:
        std::snprintf(buf, len, "[%llu] %-16s shard=%u events=%llu", tick,
                      name, windowShard(a),
                      static_cast<unsigned long long>(windowValue(a)));
        break;
      case EventId::BarrierWait:
        std::snprintf(buf, len, "[%llu] %-16s shard=%u waitNs=%llu", tick,
                      name, windowShard(a),
                      static_cast<unsigned long long>(windowValue(a)));
        break;
      case EventId::ReqRetire:
        std::snprintf(buf, len, "[%llu] %-16s n%u kind=%s latency=%llu",
                      tick, name, unsigned(reqNode(a)),
                      std::string(reqKindName(reqKind(a))).c_str(),
                      static_cast<unsigned long long>(reqLatency(a)));
        break;
      case EventId::TxnCommit:
      case EventId::TxnAbort:
        std::snprintf(buf, len, "[%llu] %-16s n%u aborts=%llu", tick,
                      name, unsigned(txnNode(a)),
                      static_cast<unsigned long long>(txnAborts(a)));
        break;
      default:
        std::snprintf(buf, len, "[%llu] %-16s arg=%" PRIx64, tick, name, a);
        break;
    }
}

void
printEvent(std::FILE *out, const Event &e)
{
    char line[160];
    formatEvent(e, line, sizeof(line));
    std::fprintf(out, "  %s\n", line);
}

} // namespace smtp::trace
