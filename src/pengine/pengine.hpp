/**
 * @file
 * The embedded programmable protocol processor of the conventional
 * machine models (paper Section 3): a dual-issue in-order sequencer in
 * the style of the Stanford FLASH MAGIC / SGI Origin hub, executing the
 * same handler image as the SMTp protocol thread.
 *
 * Timing model: statically scheduled dual issue — two consecutive
 * instructions share a cycle when the second does not read the first's
 * result, at most one memory operation and one control transfer issue
 * per cycle, and taken branches cost one bubble (no speculation).
 * Loads/stores access the directory data cache (direct-mapped,
 * write-back; 512 KB, 64 KB, or perfect depending on the machine
 * model); misses go to SDRAM and stall the engine. Instructions fetch
 * through a 32 KB direct-mapped protocol instruction cache that only
 * ever misses cold.
 */

#ifndef SMTP_PENGINE_PENGINE_HPP
#define SMTP_PENGINE_PENGINE_HPP

#include "cache/cache_array.hpp"
#include "mem/agent.hpp"
#include "mem/controller.hpp"
#include "sim/clock.hpp"
#include "sim/eventq.hpp"
#include "sim/stats.hpp"

namespace smtp
{

struct PEngineParams
{
    std::uint64_t freqMHz = 1000;
    bool perfectDcache = false;
    std::size_t dcacheBytes = 512 * 1024; ///< Direct mapped.
    unsigned dcacheLineBytes = 32;
    std::size_t icacheBytes = 32 * 1024;  ///< Direct mapped.
    unsigned icacheLineBytes = 16;        ///< Four instructions.
    Cycles dcacheHit = 1;
};

class PEngine : public ProtocolAgent
{
  public:
    PEngine(EventQueue &eq, MemController &mc, const PEngineParams &params)
        : eq_(&eq), mc_(&mc), params_(params), clock_(params.freqMHz),
          dcache_(params.dcacheBytes, params.dcacheLineBytes, 1),
          icache_(params.icacheBytes, params.icacheLineBytes, 1)
    {
        mc.setAgent(this);
    }

    bool canAccept() const override { return ctx_ == nullptr; }

    void
    start(TransactionCtx *ctx) override
    {
        SMTP_ASSERT(ctx_ == nullptr, "protocol processor already busy");
        ctx_ = ctx;
        idx_ = 0;
        startTick_ = eq_->curTick();
        SMTP_TRACE_EVENT(trace_, startTick_,
                         trace::EventId::ProtoBusyBegin, 0);
        SMTP_TRACE_EVENT(trace_, startTick_, trace::EventId::HandlerStart,
                         trace::packMsg(ctx->msg, ctx->msg.mshr));
        // Handler issue begins on the next engine clock edge.
        time_ = clock_.nextEdge(startTick_);
        slotFree_ = false;
        lastWasMem_ = false;
        step();
    }

    Tick busyTicks() const override { return busyTicks_; }

    /** Attach the node's protocol telemetry buffer. */
    void setTrace(trace::TraceBuffer *buf) { trace_ = buf; }

    // Stats.
    Counter instructions, pairedIssues;
    Counter dcacheHits, dcacheMisses, dcacheWritebacks;
    Counter icacheMisses;
    Counter handlers;

  private:
    void step();

    /** True when @p cur can share @p prev's issue cycle. */
    static bool
    pairable(const proto::PInst &prev, const proto::PInst &cur)
    {
        using proto::POp;
        // Structural: one memory op, one uncached op, one branch per
        // cycle; a branch closes the issue window.
        auto is_mem = [](const proto::PInst &i) {
            return i.op == POp::Ld || i.op == POp::St;
        };
        auto is_special = [](const proto::PInst &i) {
            return i.op == POp::SendH || i.op == POp::SendG ||
                   i.op == POp::Switch || i.op == POp::Ldctxt ||
                   i.op == POp::Ldprobe;
        };
        auto is_branch = [](const proto::PInst &i) {
            return i.op == POp::Beq || i.op == POp::Bne || i.op == POp::J;
        };
        if (is_branch(prev))
            return false;
        if (is_mem(prev) && is_mem(cur))
            return false;
        if (is_special(prev) || is_special(cur))
            return false;
        // RAW: cur reads prev's destination.
        bool prev_writes =
            prev.op != POp::St && prev.op != POp::Nop && prev.rd != 0;
        if (prev_writes && (cur.rs1 == prev.rd || cur.rs2 == prev.rd))
            return false;
        return true;
    }

    EventQueue *eq_;
    MemController *mc_;
    PEngineParams params_;
    ClockDomain clock_;
    CacheArray dcache_;
    CacheArray icache_;

    TransactionCtx *ctx_ = nullptr;
    std::size_t idx_ = 0;
    trace::TraceBuffer *trace_ = nullptr;
    Tick startTick_ = 0;
    Tick time_ = 0;
    bool slotFree_ = false;
    bool lastWasMem_ = false;
    Tick busyTicks_ = 0;
};

} // namespace smtp

#endif // SMTP_PENGINE_PENGINE_HPP
