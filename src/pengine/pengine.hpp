/**
 * @file
 * The embedded programmable protocol processor of the conventional
 * machine models (paper Section 3): a dual-issue in-order sequencer in
 * the style of the Stanford FLASH MAGIC / SGI Origin hub, executing the
 * same handler image as the SMTp protocol thread.
 *
 * Timing model: statically scheduled dual issue — two consecutive
 * instructions share a cycle when the second does not read the first's
 * result, at most one memory operation and one control transfer issue
 * per cycle, and taken branches cost one bubble (no speculation).
 * Loads/stores access the directory data cache (direct-mapped,
 * write-back; 512 KB, 64 KB, or perfect depending on the machine
 * model); misses go to SDRAM and stall the engine. Instructions fetch
 * through a 32 KB direct-mapped protocol instruction cache that only
 * ever misses cold.
 */

#ifndef SMTP_PENGINE_PENGINE_HPP
#define SMTP_PENGINE_PENGINE_HPP

#include <algorithm>
#include <functional>

#include "cache/cache_array.hpp"
#include "mem/agent.hpp"
#include "mem/controller.hpp"
#include "sim/clock.hpp"
#include "sim/eventq.hpp"
#include "sim/stats.hpp"

namespace smtp
{

struct PEngineParams
{
    std::uint64_t freqMHz = 1000;
    bool perfectDcache = false;
    std::size_t dcacheBytes = 512 * 1024; ///< Direct mapped.
    unsigned dcacheLineBytes = 32;
    std::size_t icacheBytes = 32 * 1024;  ///< Direct mapped.
    unsigned icacheLineBytes = 16;        ///< Four instructions.
    Cycles dcacheHit = 1;
};

class PEngine : public ProtocolAgent
{
  public:
    PEngine(EventQueue &eq, MemController &mc, const PEngineParams &params)
        : eq_(&eq), mc_(&mc), params_(params), clock_(params.freqMHz),
          dcache_(params.dcacheBytes, params.dcacheLineBytes, 1),
          icache_(params.icacheBytes, params.icacheLineBytes, 1)
    {
        mc.setAgent(this);
    }

    bool canAccept() const override { return ctx_ == nullptr; }

    void
    start(TransactionCtx *ctx) override
    {
        SMTP_ASSERT(ctx_ == nullptr, "protocol processor already busy");
        ctx_ = ctx;
        idx_ = 0;
        startTick_ = eq_->curTick();
        SMTP_TRACE_EVENT(trace_, startTick_,
                         trace::EventId::ProtoBusyBegin, 0);
        SMTP_TRACE_EVENT(trace_, startTick_, trace::EventId::HandlerStart,
                         trace::packMsg(ctx->msg, ctx->msg.mshr));
        // Handler issue begins on the next engine clock edge.
        time_ = clock_.nextEdge(startTick_);
        slotFree_ = false;
        lastWasMem_ = false;
        step();
    }

    Tick busyTicks() const override { return busyTicks_; }

    /** Attach the node's protocol telemetry buffer. */
    void setTrace(trace::TraceBuffer *buf) { trace_ = buf; }

    // Stats.
    Counter instructions, pairedIssues;
    Counter dcacheHits, dcacheMisses, dcacheWritebacks;
    Counter icacheMisses;
    Counter handlers;

    // ---- Snapshot support --------------------------------------------
    //
    // Pending SDRAM fills and deferred release/done events reference the
    // engine by node and the in-flight transaction by context id,
    // resolved through the owning memory controller at decode/fire time.

    struct IcacheFillEv
    {
        static constexpr std::uint32_t kSnapId = snap::evPeIcacheFill;
        PEngine *pe;
        std::uint64_t resume;
        void
        operator()() const
        {
            pe->time_ = std::max(
                pe->time_, pe->clock_.nextEdge(pe->eq_->curTick()));
            SMTP_ASSERT(pe->idx_ == resume, "fetch resume skew");
            pe->step();
        }
        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(pe->mc_->nodeId());
            s.u64(resume);
        }
    };

    struct DcacheFillEv
    {
        static constexpr std::uint32_t kSnapId = snap::evPeDcacheFill;
        PEngine *pe;
        void
        operator()() const
        {
            pe->time_ = std::max(
                pe->time_, pe->clock_.nextEdge(pe->eq_->curTick()));
            pe->step();
        }
        void snapEncode(snap::Ser &s) const { s.u16(pe->mc_->nodeId()); }
    };

    struct SendReleaseEv
    {
        static constexpr std::uint32_t kSnapId = snap::evPeSendRelease;
        PEngine *pe;
        std::uint64_t ctxId;
        std::uint32_t sendIdx;
        void
        operator()() const
        {
            TransactionCtx *ctx = pe->mc_->ctxById(ctxId);
            SMTP_ASSERT(ctx != nullptr, "send release for a dead handler");
            pe->mc_->releaseSend(ctx, sendIdx);
        }
        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(pe->mc_->nodeId());
            s.u64(ctxId);
            s.u32(sendIdx);
        }
    };

    struct HandlerDoneEv
    {
        static constexpr std::uint32_t kSnapId = snap::evPeHandlerDone;
        PEngine *pe;
        std::uint64_t ctxId;
        void
        operator()() const
        {
            TransactionCtx *ctx = pe->mc_->ctxById(ctxId);
            SMTP_ASSERT(ctx != nullptr, "handler done for a dead handler");
            pe->ctx_ = nullptr;
            pe->mc_->handlerDone(ctx);
        }
        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(pe->mc_->nodeId());
            s.u64(ctxId);
        }
    };

    void
    saveState(snap::Ser &out) const
    {
        out.u64(ctx_ != nullptr ? ctx_->id : 0);
        out.u64(idx_);
        out.u64(startTick_);
        out.u64(time_);
        out.b(slotFree_);
        out.b(lastWasMem_);
        out.u64(busyTicks_);
        dcache_.saveState(out);
        icache_.saveState(out);
        instructions.saveState(out);
        pairedIssues.saveState(out);
        dcacheHits.saveState(out);
        dcacheMisses.saveState(out);
        dcacheWritebacks.saveState(out);
        icacheMisses.saveState(out);
        handlers.saveState(out);
    }

    void
    restoreState(snap::Des &in)
    {
        std::uint64_t ctx_id = in.u64();
        ctx_ = nullptr;
        if (ctx_id != 0) {
            ctx_ = mc_->ctxById(ctx_id);
            if (ctx_ == nullptr) {
                in.fail("corrupt snapshot: protocol engine references "
                        "an unknown transaction");
                return;
            }
        }
        idx_ = in.u64();
        startTick_ = in.u64();
        time_ = in.u64();
        slotFree_ = in.bl();
        lastWasMem_ = in.bl();
        busyTicks_ = in.u64();
        dcache_.restoreState(in);
        icache_.restoreState(in);
        instructions.restoreState(in);
        pairedIssues.restoreState(in);
        dcacheHits.restoreState(in);
        dcacheMisses.restoreState(in);
        dcacheWritebacks.restoreState(in);
        icacheMisses.restoreState(in);
        handlers.restoreState(in);
    }

    static void
    registerSnapEvents(snap::EventCodec &codec,
                       std::function<PEngine *(NodeId)> resolve)
    {
        auto pe_of = [resolve](snap::Des &in) -> PEngine * {
            NodeId n = in.u16();
            PEngine *pe = resolve(n);
            if (pe == nullptr)
                in.fail("snapshot references an unknown protocol engine");
            return pe;
        };
        codec.add(snap::evPeIcacheFill,
                  [pe_of](snap::Des &in) -> InlineCallback {
                      PEngine *pe = pe_of(in);
                      std::uint64_t resume = in.u64();
                      if (pe == nullptr)
                          return {};
                      return IcacheFillEv{pe, resume};
                  });
        codec.add(snap::evPeDcacheFill,
                  [pe_of](snap::Des &in) -> InlineCallback {
                      PEngine *pe = pe_of(in);
                      if (pe == nullptr)
                          return {};
                      return DcacheFillEv{pe};
                  });
        codec.add(snap::evPeSendRelease,
                  [pe_of](snap::Des &in) -> InlineCallback {
                      PEngine *pe = pe_of(in);
                      std::uint64_t id = in.u64();
                      std::uint32_t send_idx = in.u32();
                      if (pe == nullptr)
                          return {};
                      return SendReleaseEv{pe, id, send_idx};
                  });
        codec.add(snap::evPeHandlerDone,
                  [pe_of](snap::Des &in) -> InlineCallback {
                      PEngine *pe = pe_of(in);
                      std::uint64_t id = in.u64();
                      if (pe == nullptr)
                          return {};
                      return HandlerDoneEv{pe, id};
                  });
    }

  private:
    void step();

    /** True when @p cur can share @p prev's issue cycle. */
    static bool
    pairable(const proto::PInst &prev, const proto::PInst &cur)
    {
        using proto::POp;
        // Structural: one memory op, one uncached op, one branch per
        // cycle; a branch closes the issue window.
        auto is_mem = [](const proto::PInst &i) {
            return i.op == POp::Ld || i.op == POp::St;
        };
        auto is_special = [](const proto::PInst &i) {
            return i.op == POp::SendH || i.op == POp::SendG ||
                   i.op == POp::Switch || i.op == POp::Ldctxt ||
                   i.op == POp::Ldprobe;
        };
        auto is_branch = [](const proto::PInst &i) {
            return i.op == POp::Beq || i.op == POp::Bne || i.op == POp::J;
        };
        if (is_branch(prev))
            return false;
        if (is_mem(prev) && is_mem(cur))
            return false;
        if (is_special(prev) || is_special(cur))
            return false;
        // RAW: cur reads prev's destination.
        bool prev_writes =
            prev.op != POp::St && prev.op != POp::Nop && prev.rd != 0;
        if (prev_writes && (cur.rs1 == prev.rd || cur.rs2 == prev.rd))
            return false;
        return true;
    }

    EventQueue *eq_;
    MemController *mc_;
    PEngineParams params_;
    ClockDomain clock_;
    CacheArray dcache_;
    CacheArray icache_;

    TransactionCtx *ctx_ = nullptr;
    std::size_t idx_ = 0;
    trace::TraceBuffer *trace_ = nullptr;
    Tick startTick_ = 0;
    Tick time_ = 0;
    bool slotFree_ = false;
    bool lastWasMem_ = false;
    Tick busyTicks_ = 0;
};

} // namespace smtp

#endif // SMTP_PENGINE_PENGINE_HPP
