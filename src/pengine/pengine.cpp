#include "pengine.hpp"

namespace smtp
{

using proto::POp;

void
PEngine::step()
{
    SMTP_ASSERT(ctx_ != nullptr, "step without a handler");
    const auto &insts = ctx_->trace.insts;

    while (idx_ < insts.size()) {
        const proto::ExecInst &rec = insts[idx_];
        const proto::PInst &inst = rec.inst;

        // Instruction fetch: cold misses in the protocol I-cache stall.
        Addr fetch_addr = proto::protoCodeBase + 4ULL * rec.pc;
        if (icache_.find(fetch_addr) == nullptr) {
            ++icacheMisses;
            CacheLine *victim = icache_.victimFor(fetch_addr);
            victim->addr = icache_.align(fetch_addr);
            victim->state = LineState::Sh;
            icache_.touch(victim);
            mc_->sdram().access(fetch_addr, params_.icacheLineBytes, false,
                                IcacheFillEv{this, idx_});
            return;
        }

        // Issue slot: pair with the previous instruction when legal.
        bool paired = slotFree_ && idx_ > 0 &&
                      pairable(insts[idx_ - 1].inst, inst);
        if (paired) {
            ++pairedIssues;
            slotFree_ = false;
        } else {
            time_ += clock_.period();
            slotFree_ = true;
        }
        ++instructions;

        switch (inst.op) {
          case POp::Ld:
          case POp::St: {
            if (!params_.perfectDcache) {
                CacheLine *line = dcache_.find(rec.memAddr);
                if (line == nullptr) {
                    ++dcacheMisses;
                    CacheLine *victim = dcache_.victimFor(rec.memAddr);
                    if (victim->valid() &&
                        victim->state == LineState::Mod) {
                        ++dcacheWritebacks;
                        mc_->sdram().access(victim->addr,
                                            params_.dcacheLineBytes, true);
                    }
                    victim->addr = dcache_.align(rec.memAddr);
                    victim->state = inst.op == POp::St ? LineState::Mod
                                                       : LineState::Sh;
                    dcache_.touch(victim);
                    // Stall the engine until the line returns.
                    ++idx_;
                    slotFree_ = false;
                    mc_->sdram().access(rec.memAddr,
                                        params_.dcacheLineBytes, false,
                                        DcacheFillEv{this});
                    return;
                }
                ++dcacheHits;
                if (inst.op == POp::St)
                    line->state = LineState::Mod;
                dcache_.touch(line);
            }
            time_ += clock_.cyclesToTicks(params_.dcacheHit - 1);
            slotFree_ = false;
            break;
          }
          case POp::Beq:
          case POp::Bne:
          case POp::J:
            if (rec.branchTaken) {
                time_ += clock_.period(); // one bubble, no speculation
                slotFree_ = false;
            }
            break;
          case POp::Ldprobe:
            if (ctx_->probeReady > time_) {
                time_ = clock_.nextEdge(ctx_->probeReady);
                slotFree_ = false;
            }
            break;
          case POp::SendG: {
            SMTP_ASSERT(rec.sendIdx >= 0, "SendG without a send record");
            auto send_idx = static_cast<std::uint32_t>(rec.sendIdx);
            if (time_ > eq_->curTick()) {
                eq_->schedule(time_,
                              SendReleaseEv{this, ctx_->id, send_idx});
            } else {
                mc_->releaseSend(ctx_, send_idx);
            }
            slotFree_ = false;
            break;
          }
          default:
            break;
        }
        ++idx_;
    }

    // Handler complete at `time_`; the engine stays busy until then.
    // The completion events carry that future tick — legal, since each
    // track's events still come out time-ordered.
    ++handlers;
    busyTicks_ += time_ - startTick_;
    SMTP_TRACE_EVENT(trace_, time_, trace::EventId::HandlerRetire,
                     trace::packMsg(ctx_->msg, ctx_->msg.mshr));
    SMTP_TRACE_EVENT(trace_, time_, trace::EventId::ProtoBusyEnd, 0);
    auto *ctx = ctx_;
    if (time_ > eq_->curTick()) {
        eq_->schedule(time_, HandlerDoneEv{this, ctx->id});
    } else {
        ctx_ = nullptr;
        mc_->handlerDone(ctx);
    }
}

} // namespace smtp
