#include "fault/fault.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"

namespace smtp::fault
{

namespace
{

void
appendField(std::string &s, const char *key, double v)
{
    if (v <= 0.0)
        return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",%s=%g", key, v);
    s += buf;
}

void
appendTickNs(std::string &s, const char *key, Tick v, Tick dflt)
{
    if (v == dflt)
        return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",%s=%llu", key,
                  static_cast<unsigned long long>(v / tickPerNs));
    s += buf;
}

} // namespace

std::string
FaultPlan::toString() const
{
    char head[64];
    std::snprintf(head, sizeof(head), "seed=%llu",
                  static_cast<unsigned long long>(seed));
    std::string s = head;
    appendField(s, "drop", netDrop);
    appendField(s, "dup", netDup);
    appendField(s, "delay", netDelay);
    appendField(s, "reorder", netReorder);
    FaultPlan dflt;
    appendTickNs(s, "delaymax", netDelayMax, dflt.netDelayMax);
    appendTickNs(s, "timeout", retransmitTimeout, dflt.retransmitTimeout);
    if (maxRetransmits != dflt.maxRetransmits)
        s += ",maxretx=" + std::to_string(maxRetransmits);
    appendField(s, "flip", memFlipSingle);
    appendField(s, "flip2", memFlipDouble);
    appendField(s, "nak", forceNak);
    if (injectDropWithoutRetransmit)
        s += ",droploss=1";
    return s;
}

bool
FaultPlan::parse(const std::string &spec, FaultPlan &out, std::string *err)
{
    FaultPlan plan;
    auto fail = [&](const std::string &why) {
        if (err != nullptr)
            *err = why;
        return false;
    };
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string item = spec.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return fail("expected key=value, got '" + item + "'");
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        char *end = nullptr;
        double d = std::strtod(val.c_str(), &end);
        if (end == val.c_str() || *end != '\0')
            return fail("bad value '" + val + "' for key '" + key + "'");
        if (key == "seed") {
            plan.seed = static_cast<std::uint64_t>(d);
        } else if (key == "drop") {
            plan.netDrop = d;
        } else if (key == "dup") {
            plan.netDup = d;
        } else if (key == "delay") {
            plan.netDelay = d;
        } else if (key == "reorder") {
            plan.netReorder = d;
        } else if (key == "delaymax") {
            plan.netDelayMax = static_cast<Tick>(d) * tickPerNs;
        } else if (key == "timeout") {
            plan.retransmitTimeout = static_cast<Tick>(d) * tickPerNs;
        } else if (key == "maxretx") {
            plan.maxRetransmits = static_cast<unsigned>(d);
        } else if (key == "flip") {
            plan.memFlipSingle = d;
        } else if (key == "flip2") {
            plan.memFlipDouble = d;
        } else if (key == "nak") {
            plan.forceNak = d;
        } else if (key == "droploss") {
            plan.injectDropWithoutRetransmit = d != 0.0;
        } else {
            return fail("unknown fault-plan key '" + key + "'");
        }
    }
    out = plan;
    return true;
}

// ---- Retry policy -------------------------------------------------------

Tick
retryBackoff(const RetryPolicyConfig &cfg, unsigned k, Rng &rng)
{
    switch (cfg.kind) {
      case RetryKind::Immediate:
        return 0;
      case RetryKind::Fixed:
        return cfg.base + rng.below(cfg.base);
      case RetryKind::ExpBackoff: {
        unsigned shift = k > 0 ? k - 1 : 0;
        // base << shift saturates at cap well before shift overflows.
        Tick delay = shift >= 40 || (cfg.base << shift) > cfg.cap
                         ? cfg.cap
                         : cfg.base << shift;
        return delay + rng.below(cfg.base);
      }
    }
    return cfg.base;
}

bool
parseRetryPolicy(const std::string &spec, RetryPolicyConfig &out,
                 std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err != nullptr)
            *err = why;
        return false;
    };
    std::string kind = spec;
    std::string rest;
    std::size_t colon = spec.find(':');
    if (colon != std::string::npos) {
        kind = spec.substr(0, colon);
        rest = spec.substr(colon + 1);
    }
    RetryPolicyConfig cfg = out;
    if (kind == "immediate")
        cfg.kind = RetryKind::Immediate;
    else if (kind == "fixed")
        cfg.kind = RetryKind::Fixed;
    else if (kind == "exp")
        cfg.kind = RetryKind::ExpBackoff;
    else
        return fail("unknown retry policy '" + kind + "'");
    if (!rest.empty()) {
        std::size_t c2 = rest.find(':');
        std::string base_s = rest.substr(0, c2);
        std::uint64_t base_ns = std::strtoull(base_s.c_str(), nullptr, 10);
        if (base_ns == 0)
            return fail("retry base must be a positive ns count");
        cfg.base = static_cast<Tick>(base_ns) * tickPerNs;
        if (c2 != std::string::npos) {
            std::uint64_t cap_ns =
                std::strtoull(rest.c_str() + c2 + 1, nullptr, 10);
            if (cap_ns == 0)
                return fail("retry cap must be a positive ns count");
            cfg.cap = static_cast<Tick>(cap_ns) * tickPerNs;
        }
    }
    out = cfg;
    return true;
}

std::string
retryPolicyToString(const RetryPolicyConfig &cfg)
{
    const char *kind = cfg.kind == RetryKind::Immediate ? "immediate"
                       : cfg.kind == RetryKind::Fixed   ? "fixed"
                                                        : "exp";
    char buf[96];
    if (cfg.kind == RetryKind::ExpBackoff) {
        std::snprintf(buf, sizeof(buf), "%s:%llu:%llu", kind,
                      static_cast<unsigned long long>(cfg.base / tickPerNs),
                      static_cast<unsigned long long>(cfg.cap / tickPerNs));
    } else if (cfg.kind == RetryKind::Fixed) {
        std::snprintf(buf, sizeof(buf), "%s:%llu", kind,
                      static_cast<unsigned long long>(cfg.base / tickPerNs));
    } else {
        std::snprintf(buf, sizeof(buf), "%s", kind);
    }
    return buf;
}

// ---- Injector -----------------------------------------------------------

FaultInjector::FaultInjector(const FaultPlan &plan, unsigned nodes)
    : plan_(plan)
{
    SMTP_ASSERT(nodes >= 1, "fault injector needs at least one node");
    slices_.reserve(nodes);
    for (unsigned n = 0; n < nodes; ++n) {
        // Node 0's network stream matches the pre-sharding global
        // stream (seed * golden-ratio + 1), so single-node harnesses
        // that pinned decision sequences keep their expectations.
        slices_.emplace_back(
            (plan.seed + n * 0x51ed270bULL) * 0x9e3779b97f4a7c15ULL + 1,
            plan.seed + 0x1000 + n * 7919,
            plan.seed + 0x2000 + n * 104729);
    }
}

unsigned
FaultInjector::linkRetransmits(unsigned node)
{
    if (plan_.netDrop <= 0.0)
        return 0;
    Slice &s = slices_[node];
    unsigned k = 0;
    while (k < plan_.maxRetransmits && s.netRng.chance(plan_.netDrop))
        ++k;
    s.netDrops += k;
    return k;
}

bool
FaultInjector::linkDuplicate(unsigned node)
{
    Slice &s = slices_[node];
    if (plan_.netDup <= 0.0 || !s.netRng.chance(plan_.netDup))
        return false;
    ++s.netDups;
    return true;
}

Tick
FaultInjector::linkExtraDelay(unsigned node)
{
    Slice &s = slices_[node];
    if (plan_.netDelay <= 0.0 || !s.netRng.chance(plan_.netDelay))
        return 0;
    ++s.netDelays;
    return 1 + s.netRng.below(std::max<Tick>(plan_.netDelayMax, 1));
}

bool
FaultInjector::landingReorder(unsigned node)
{
    Slice &s = slices_[node];
    if (plan_.netReorder <= 0.0 || !s.netRng.chance(plan_.netReorder))
        return false;
    return true;
}

FaultInjector::Ecc
FaultInjector::sdramRead(NodeId node)
{
    SMTP_ASSERT(node < slices_.size(), "sdram fault for unknown node");
    Slice &s = slices_[node];
    if (plan_.memFlipSingle <= 0.0 && plan_.memFlipDouble <= 0.0)
        return Ecc::None;
    double u = s.memRng.uniform();
    if (u < plan_.memFlipDouble) {
        ++s.eccDetected;
        return Ecc::Detected;
    }
    if (u < plan_.memFlipDouble + plan_.memFlipSingle) {
        ++s.eccCorrected;
        ++s.eccScrubs;
        return Ecc::Corrected;
    }
    return Ecc::None;
}

bool
FaultInjector::forceNak(NodeId node)
{
    SMTP_ASSERT(node < slices_.size(), "forced NAK for unknown node");
    Slice &s = slices_[node];
    if (plan_.forceNak <= 0.0 || !s.protoRng.chance(plan_.forceNak))
        return false;
    ++s.naksForced;
    return true;
}

// ---- Snapshot support ---------------------------------------------------

void
FaultInjector::Slice::saveState(snap::Ser &out) const
{
    netRng.saveState(out);
    memRng.saveState(out);
    protoRng.saveState(out);
    netDrops.saveState(out);
    netDups.saveState(out);
    netDupsFiltered.saveState(out);
    netDelays.saveState(out);
    netReorders.saveState(out);
    netLost.saveState(out);
    eccCorrected.saveState(out);
    eccDetected.saveState(out);
    eccScrubs.saveState(out);
    eccRefetches.saveState(out);
    naksForced.saveState(out);
}

void
FaultInjector::Slice::restoreState(snap::Des &in)
{
    netRng.restoreState(in);
    memRng.restoreState(in);
    protoRng.restoreState(in);
    netDrops.restoreState(in);
    netDups.restoreState(in);
    netDupsFiltered.restoreState(in);
    netDelays.restoreState(in);
    netReorders.restoreState(in);
    netLost.restoreState(in);
    eccCorrected.restoreState(in);
    eccDetected.restoreState(in);
    eccScrubs.restoreState(in);
    eccRefetches.restoreState(in);
    naksForced.restoreState(in);
}

void
FaultInjector::saveState(snap::Ser &out) const
{
    out.u64(slices_.size());
    for (const Slice &s : slices_)
        s.saveState(out);
}

void
FaultInjector::restoreState(snap::Des &in)
{
    if (in.u64() != slices_.size()) {
        in.fail("corrupt snapshot: fault injector slice count mismatch");
        return;
    }
    for (Slice &s : slices_)
        s.restoreState(in);
}

} // namespace smtp::fault
