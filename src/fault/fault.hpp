/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultPlan describes *what* can go wrong (per-link message drops,
 * duplications, delay jitter and bounded reordering on the network;
 * transient single/double bit flips under an SEC-DED ECC model in the
 * SDRAM; forced NAKs at the protocol dispatch unit) and a FaultInjector
 * turns the plan into a seeded, fully deterministic decision stream the
 * existing layers consult at their hook points.
 *
 * Determinism contract: every decision is drawn from an explicitly
 * seeded Rng owned by the injector. Streams are partitioned per node
 * (one network stream, one SDRAM stream and one protocol stream each),
 * so the injected-event schedule is a pure function of (plan, per-node
 * event order) — identical across runs, across sweep worker counts,
 * and across the serial/parallel execution kernels, because every hook
 * is only ever consulted from the shard that owns the node. With no
 * injector attached (the default) every hook is a single null-pointer
 * test and simulated timing is bit-identical to a build without this
 * subsystem.
 *
 * Fault semantics are recoverable by construction (docs/robustness.md):
 *
 *  - dropped link transmissions are retried by a link-level
 *    ack/retransmit protocol (SGI Spider LLP style), modelled as added
 *    latency plus repeated link occupancy — never message loss;
 *  - duplicated deliveries carry a link-sequence flag and are filtered
 *    at the landing buffer, so the protocol layer sees each message
 *    exactly once;
 *  - single-bit SDRAM flips are corrected in the ECC datapath (and
 *    scrubbed); double-bit flips are detected and satisfied by a
 *    refetch, costing one extra device access;
 *  - forced NAKs ride the protocol's own NAK-and-retry path.
 *
 * The one deliberate exception is the injectDropWithoutRetransmit bug
 * hook (analogous to proto::HandlerOptions::injectSkipFirstInval):
 * it turns a drop into real loss so tests can prove the checker and
 * watchdog catch unrecovered messages.
 */

#ifndef SMTP_FAULT_FAULT_HPP
#define SMTP_FAULT_FAULT_HPP

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/stats.hpp"
#include "snap/snap.hpp"
#include "trace/trace.hpp"

namespace smtp::fault
{

/**
 * A seeded description of the faults to inject. All probabilities are
 * per-decision (per link traversal, per SDRAM read, per eligible
 * dispatch) and default to zero, so a default plan is fully disabled.
 */
struct FaultPlan
{
    std::uint64_t seed = 1;

    // ---- Network (per physical-link traversal) -----------------------
    double netDrop = 0.0;    ///< Transmission corrupted; LLP retransmits.
    double netDup = 0.0;     ///< Delivery duplicated; filtered by seq.
    double netDelay = 0.0;   ///< Extra jitter on this traversal.
    double netReorder = 0.0; ///< Adjacent cross-source landing swap.
    Tick netDelayMax = 200 * tickPerNs;       ///< Jitter upper bound.
    Tick retransmitTimeout = 400 * tickPerNs; ///< Per lost transmission.
    unsigned maxRetransmits = 8; ///< Cap on consecutive corruptions.

    // ---- SDRAM (per read access, SEC-DED ECC) ------------------------
    double memFlipSingle = 0.0; ///< Corrected on the fly + scrubbed.
    double memFlipDouble = 0.0; ///< Detected; satisfied by a refetch.

    // ---- Protocol ----------------------------------------------------
    /** Probability an eligible (NAKable) dispatch is force-NAKed. */
    double forceNak = 0.0;

    /**
     * Deliberate bug hook: a dropped transmission is *not* retransmitted
     * — the message is lost. Exists to prove the checker/watchdog catch
     * unrecovered loss; never enabled by a legitimate plan.
     */
    bool injectDropWithoutRetransmit = false;

    bool
    anyNetwork() const
    {
        return netDrop > 0.0 || netDup > 0.0 || netDelay > 0.0 ||
               netReorder > 0.0;
    }

    bool anyMem() const { return memFlipSingle > 0.0 || memFlipDouble > 0.0; }
    bool anyProtocol() const { return forceNak > 0.0; }

    bool
    enabled() const
    {
        return anyNetwork() || anyMem() || anyProtocol();
    }

    /**
     * Canonical spec string (parse(toString()) round-trips), e.g.
     * "seed=42,drop=0.01,dup=0.01,delay=0.02,flip=0.001,nak=0.02".
     * Emitted into bench --json records so a chaotic run is
     * reproducible from the JSON alone.
     */
    std::string toString() const;

    /**
     * Parse a comma-separated key=value spec. Keys: seed, drop, dup,
     * delay, delaymax (ns), reorder, timeout (ns), maxretx, flip,
     * flip2, nak, droploss. False (with *err set) on unknown keys or
     * malformed values.
     */
    static bool parse(const std::string &spec, FaultPlan &out,
                      std::string *err = nullptr);
};

// ---- NAK retry policy ---------------------------------------------------

/** How a requester paces NAK-and-retry resends. */
enum class RetryKind : std::uint8_t
{
    Fixed,     ///< base + jitter, every retry (historical behaviour).
    Immediate, ///< resend at once (stress the home's dispatch path).
    ExpBackoff ///< base doubling per retry up to cap, plus jitter.
};

struct RetryPolicyConfig
{
    RetryKind kind = RetryKind::Fixed;
    Tick base = 100 * tickPerNs; ///< First-retry delay and jitter range.
    Tick cap = 6400 * tickPerNs; ///< ExpBackoff ceiling (before jitter).
    /** Retry count at which the starvation detector flags (0 = off). */
    unsigned starvationRetries = 32;
};

/**
 * Backoff before the @p k-th resend (k >= 1) under @p cfg, drawing
 * jitter from @p rng. Fixed consumes exactly one draw of
 * rng.below(base) — bit-identical to the historical nakBackoff path;
 * Immediate consumes none.
 */
Tick retryBackoff(const RetryPolicyConfig &cfg, unsigned k, Rng &rng);

/**
 * Parse "immediate" | "fixed[:baseNs]" | "exp[:baseNs[:capNs]]" into
 * @p out (starvationRetries is left untouched).
 */
bool parseRetryPolicy(const std::string &spec, RetryPolicyConfig &out,
                      std::string *err = nullptr);

/** Canonical form accepted by parseRetryPolicy. */
std::string retryPolicyToString(const RetryPolicyConfig &cfg);

// ---- Injector -----------------------------------------------------------

class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, unsigned nodes);

    const FaultPlan &plan() const { return plan_; }

    unsigned nodes() const { return static_cast<unsigned>(slices_.size()); }

    /**
     * Per-node decision streams, counters and trace buffer. Slices are
     * cache-line aligned so concurrent shards never false-share; each
     * slice is only ever touched by the shard that owns node @p n
     * (enforced by the mailbox routing in sim/shard.hpp, proven by the
     * TSan CI job).
     */
    struct alignas(64) Slice
    {
        explicit Slice(std::uint64_t net_seed = 1, std::uint64_t mem_seed = 1,
                       std::uint64_t proto_seed = 1)
            : netRng(net_seed), memRng(mem_seed), protoRng(proto_seed)
        {
        }

        Rng netRng;   ///< Link drop/dup/jitter/reorder decisions.
        Rng memRng;   ///< SDRAM ECC flip decisions.
        Rng protoRng; ///< Forced-NAK decisions.

        Counter netDrops;        ///< Corrupted transmissions (= retransmits).
        Counter netDups;         ///< Duplicated deliveries injected.
        Counter netDupsFiltered; ///< Duplicates discarded at landing.
        Counter netDelays;       ///< Traversals given extra jitter.
        Counter netReorders;     ///< Landing-buffer swaps performed.
        Counter netLost;         ///< injectDropWithoutRetransmit casualties.
        Counter eccCorrected;    ///< Single-bit flips corrected.
        Counter eccDetected;     ///< Double-bit flips detected.
        Counter eccScrubs;       ///< Demand scrubs (one per corrected flip).
        Counter eccRefetches;    ///< Refetch reads serving detected flips.
        Counter naksForced;      ///< Dispatches turned into RplNak.

        trace::TraceBuffer *trace = nullptr;

        void saveState(snap::Ser &out) const;
        void restoreState(snap::Des &in);
    };

    Slice &slice(unsigned n) { return slices_[n]; }
    const Slice &slice(unsigned n) const { return slices_[n]; }

    // ---- Network hooks (per-node stream, consulted in the event order
    //      of the shard owning @p node) ---------------------------------

    /**
     * Number of corrupted transmissions before this traversal succeeds
     * (0 = clean). Each costs one retransmitTimeout of latency and one
     * extra serialisation of link occupancy.
     */
    unsigned linkRetransmits(unsigned node);

    /** Should this delivery be duplicated (dup filtered by seq at RX)? */
    bool linkDuplicate(unsigned node);

    /** Extra jitter for this traversal (0 = none). */
    Tick linkExtraDelay(unsigned node);

    /** Swap this landing with its (cross-source) predecessor? */
    bool landingReorder(unsigned node);

    // ---- SDRAM hook (per-node stream) --------------------------------

    enum class Ecc : std::uint8_t
    {
        None,      ///< Clean read.
        Corrected, ///< Single-bit flip: SEC corrected + scrubbed.
        Detected   ///< Double-bit flip: DED detected; refetch needed.
    };

    Ecc sdramRead(NodeId node);

    // ---- Protocol hook (per-node stream) ------------------------------

    /** Force-NAK this eligible dispatch? */
    bool forceNak(NodeId node);

    // ---- Telemetry ----------------------------------------------------

    /** Per-node fault trace buffer (Category::Fault); may be null. */
    void setTrace(unsigned node, trace::TraceBuffer *buf)
    {
        slices_[node].trace = buf;
    }

    trace::TraceBuffer *trace(unsigned node) { return slices_[node].trace; }

    // ---- Aggregate counters (sum over nodes, for reporting) -----------

    std::uint64_t netDrops() const { return sum(&Slice::netDrops); }
    std::uint64_t netDups() const { return sum(&Slice::netDups); }
    std::uint64_t netDupsFiltered() const
    {
        return sum(&Slice::netDupsFiltered);
    }
    std::uint64_t netDelays() const { return sum(&Slice::netDelays); }
    std::uint64_t netReorders() const { return sum(&Slice::netReorders); }
    std::uint64_t netLost() const { return sum(&Slice::netLost); }
    std::uint64_t eccCorrected() const { return sum(&Slice::eccCorrected); }
    std::uint64_t eccDetected() const { return sum(&Slice::eccDetected); }
    std::uint64_t eccScrubs() const { return sum(&Slice::eccScrubs); }
    std::uint64_t eccRefetches() const { return sum(&Slice::eccRefetches); }
    std::uint64_t naksForced() const { return sum(&Slice::naksForced); }

    /** Injected faults, all classes (nonzero proves the plan fired). */
    std::uint64_t
    injectedTotal() const
    {
        return netDrops() + netDups() + netDelays() + netReorders() +
               eccCorrected() + eccDetected() + naksForced();
    }

    /** Successful recoveries (drops retransmitted, dups filtered, ...). */
    std::uint64_t
    recoveredTotal() const
    {
        return (netDrops() - netLost()) + netDupsFiltered() +
               eccCorrected() + eccRefetches();
    }

    // ---- Snapshot support ---------------------------------------------
    //
    // The plan itself is part of the machine configuration (and thus the
    // config hash); only the RNG stream positions and the counters are
    // dynamic state. The injector schedules no events of its own.

    void saveState(snap::Ser &out) const;
    void restoreState(snap::Des &in);

  private:
    std::uint64_t
    sum(Counter Slice::*member) const
    {
        std::uint64_t total = 0;
        for (const Slice &s : slices_)
            total += (s.*member).value();
        return total;
    }

    FaultPlan plan_;
    std::vector<Slice> slices_;
};

} // namespace smtp::fault

#endif // SMTP_FAULT_FAULT_HPP
