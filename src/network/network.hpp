/**
 * @file
 * Interconnection network: 2-way bristled hypercube of 6-port SGI
 * Spider-style routers (paper Table 3).
 *
 * Two nodes attach to each router; routers form a hypercube routed
 * e-cube (dimension order), which is deterministic and deadlock-free.
 * Four virtual networks share each physical link; the coherence protocol
 * uses three (request < forward < reply) so protocol-level dependences
 * never cycle through a single buffer class.
 *
 * Modelling level: message-granularity virtual cut-through. Each
 * unidirectional link serialises a message for size/bandwidth (1 GB/s)
 * and adds the 25 ns hop time; link contention is modelled with
 * busy-until reservations arbitrated FIFO in injection order. Endpoint
 * back-pressure is real: the destination's NI input queue (2 entries per
 * vnet) must accept a message before it leaves the network's landing
 * buffer, and landing buffers drain per (destination, vnet) in FIFO
 * order — which also guarantees the per-(src, dst, vnet) ordering the
 * protocol's writeback races rely on.
 */

#ifndef SMTP_NETWORK_NETWORK_HPP
#define SMTP_NETWORK_NETWORK_HPP

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "fault/fault.hpp"
#include "protocol/message.hpp"
#include "sim/eventq.hpp"
#include "sim/stats.hpp"
#include "snap/event_codec.hpp"
#include "trace/trace.hpp"

namespace smtp
{

struct NetworkParams
{
    unsigned numNodes = 1;
    Tick hopLatency = 25 * tickPerNs;     ///< Per-router hop time.
    double linkBytesPerTick = 0.001;      ///< 1 GB/s = 1 byte/ns.
    unsigned nodesPerRouter = 2;          ///< 2-way bristling.
};

class Network
{
  public:
    /**
     * Destination delivery hook: return true if the node's NI input
     * queue accepted the message, false to leave it in the landing
     * buffer (the network retries when poked or after a poll interval).
     */
    using DeliverFn = std::function<bool(const proto::Message &)>;

    Network(EventQueue &eq, const NetworkParams &params);

    void attach(NodeId node, DeliverFn fn);

    /**
     * Attach @p node's telemetry buffer. Injection stamps a fresh
     * Message::traceId (src-node buffer); hop/land/deliver and
     * back-pressure record on the destination's buffer.
     */
    void
    setTrace(NodeId node, trace::TraceBuffer *buf)
    {
        trace_[node] = buf;
    }

    /**
     * Attach a fault injector (nullptr = fault-free; the default).
     * Faults are applied per link traversal: drops become link-level
     * retransmissions (latency + repeated occupancy, never loss),
     * duplicates are filtered by link sequence at the landing buffer,
     * jitter and bounded reordering respect the per-(src, dst, vnet)
     * FIFO order the protocol relies on.
     */
    void setFaultInjector(fault::FaultInjector *fi) { faults_ = fi; }

    /** Inject a message; source MC has already applied its own queuing. */
    void inject(const proto::Message &msg);

    /** Destination drained an NI queue; try the landing buffer again. */
    void poke(NodeId node, std::uint8_t vnet);

    /** Hop count between two nodes (0 for self). */
    unsigned hopCount(NodeId a, NodeId b) const;

    /** All landing buffers empty and no messages in flight? */
    bool
    quiescent() const
    {
        return inFlight_ == 0;
    }

    /** Dump in-flight count and landing-buffer occupancy (wedge report). */
    void debugState(std::FILE *out) const;

    // ---- Snapshot support --------------------------------------------

    /** Final-hop / loopback arrival into the landing buffer. */
    struct LandEv
    {
        static constexpr std::uint32_t kSnapId = snap::evNetLand;
        Network *net;
        proto::Message m;

        void operator()() const { net->land(m); }

        void snapEncode(snap::Ser &s) const { proto::snapPut(s, m); }
    };

    /** Head arrival at an intermediate router. */
    struct HopEv
    {
        static constexpr std::uint32_t kSnapId = snap::evNetHop;
        Network *net;
        proto::Message m;
        unsigned router;

        void operator()() const { net->hop(m, router); }

        void
        snapEncode(snap::Ser &s) const
        {
            proto::snapPut(s, m);
            s.u32(router);
        }
    };

    /** Landing-buffer delivery retry after NI back-pressure. */
    struct RetryEv
    {
        static constexpr std::uint32_t kSnapId = snap::evNetRetry;
        Network *net;
        NodeId node;
        std::uint8_t vnet;

        void
        operator()() const
        {
            net->retryScheduled_[static_cast<std::size_t>(node) *
                                     proto::numVnets +
                                 vnet] = false;
            net->tryDeliver(node, vnet);
        }

        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(node);
            s.u8(vnet);
        }
    };

    void saveState(snap::Ser &out) const;
    void restoreState(snap::Des &in);
    void registerSnapEvents(snap::EventCodec &codec);

    // Stats.
    Counter msgsInjected;
    Counter bytesInjected;
    Distribution hopDist;

  private:
    struct Link
    {
        Tick busyUntil = 0;
        /**
         * Latest scheduled arrival over this link. A wire is a FIFO,
         * so fault recovery/jitter clamps later arrivals to at least
         * this — without faults arrivals are already monotone and the
         * clamp never fires (disabled runs stay bit-identical).
         */
        Tick lastArrival = 0;
        Counter msgs;
    };

    unsigned routerOf(NodeId n) const { return n / params_.nodesPerRouter; }

    /** Next router on the e-cube path from @p cur towards @p dst. */
    unsigned nextRouter(unsigned cur, unsigned dst) const;

    Link &linkBetween(unsigned r_from, unsigned r_to);
    Link &nodeLink(NodeId n, bool inbound);

    void hop(proto::Message msg, unsigned cur_router);
    void land(const proto::Message &msg);
    void tryDeliver(NodeId node, std::uint8_t vnet);

    /**
     * Traverse @p link with @p msg: reserve bandwidth, apply link
     * faults (drop/retransmit, jitter), schedule @p fn at arrival.
     */
    void traverse(Link &link, const proto::Message &msg,
                  EventQueue::Callback fn, bool final_hop = false);

    EventQueue &eq_;
    NetworkParams params_;
    unsigned numRouters_;
    unsigned dims_;
    std::vector<DeliverFn> deliver_;
    // links_[from * numRouters_ + to] for router-router links.
    std::vector<Link> links_;
    // Per-node attach links (to router and from router).
    std::vector<Link> nodeLinksIn_;   // router -> node
    std::vector<Link> nodeLinksOut_;  // node -> router
    // Landing buffers: per (node, vnet) FIFO awaiting NI acceptance.
    std::vector<std::deque<proto::Message>> landing_;
    std::vector<bool> retryScheduled_;
    std::uint64_t inFlight_ = 0;
    std::vector<trace::TraceBuffer *> trace_; ///< Per node; null = off.
    std::uint32_t nextTraceId_ = 0;
    fault::FaultInjector *faults_ = nullptr;  ///< Null = fault-free.
    std::uint64_t lostMessages_ = 0; ///< droploss-bug casualties.

    static constexpr Tick retryInterval = 5 * tickPerNs;
};

} // namespace smtp

#endif // SMTP_NETWORK_NETWORK_HPP
