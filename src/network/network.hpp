/**
 * @file
 * Interconnection network: 2-way bristled hypercube of 6-port SGI
 * Spider-style routers (paper Table 3).
 *
 * Two nodes attach to each router; routers form a hypercube routed
 * e-cube (dimension order), which is deterministic and deadlock-free.
 * Four virtual networks share each physical link; the coherence protocol
 * uses three (request < forward < reply) so protocol-level dependences
 * never cycle through a single buffer class.
 *
 * Modelling level: message-granularity virtual cut-through. Each
 * unidirectional link serialises a message for size/bandwidth (1 GB/s)
 * and adds the 25 ns hop time; link contention is modelled with
 * busy-until reservations arbitrated FIFO in injection order. Endpoint
 * back-pressure is real: the destination's NI input queue (2 entries per
 * vnet) must accept a message before it leaves the network's landing
 * buffer, and landing buffers drain per (destination, vnet) in FIFO
 * order — which also guarantees the per-(src, dst, vnet) ordering the
 * protocol's writeback races rely on.
 *
 * Sharding: the network is the *only* cross-shard channel of the
 * machine (sim/shard.hpp). Every piece of link/landing state has one
 * owning shard — a node's outbound link belongs to the node, a router
 * (and the inbound links of its attached nodes) to the shard of its
 * first node, landing buffers to the destination — and each scheduling
 * step routes its continuation to the owner of the state it touches
 * next. Since every such step adds at least hopLatency of delay,
 * hopLatency is the machine's conservative PDES lookahead.
 */

#ifndef SMTP_NETWORK_NETWORK_HPP
#define SMTP_NETWORK_NETWORK_HPP

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "fault/fault.hpp"
#include "protocol/message.hpp"
#include "sim/eventq.hpp"
#include "sim/shard.hpp"
#include "sim/stats.hpp"
#include "snap/event_codec.hpp"
#include "trace/trace.hpp"

namespace smtp
{

struct NetworkParams
{
    unsigned numNodes = 1;
    Tick hopLatency = 25 * tickPerNs;     ///< Per-router hop time.
    double linkBytesPerTick = 0.001;      ///< 1 GB/s = 1 byte/ns.
    unsigned nodesPerRouter = 2;          ///< 2-way bristling.
};

class Network
{
  public:
    /**
     * Destination delivery hook: return true if the node's NI input
     * queue accepted the message, false to leave it in the landing
     * buffer (the network retries when poked or after a poll interval).
     */
    using DeliverFn = std::function<bool(const proto::Message &)>;

    /**
     * Sharded machine wiring: one shard per node (or a single shard
     * wrapping everything — the serial degenerate case works through
     * the identical code path).
     */
    Network(ShardSet &shards, const NetworkParams &params);

    /**
     * Standalone-harness wiring: wraps @p eq in a private single-shard
     * ShardSet so component tests keep constructing `Network(eq, p)`
     * and driving `eq.run()` unchanged.
     */
    Network(EventQueue &eq, const NetworkParams &params);

    void attach(NodeId node, DeliverFn fn);

    /**
     * Attach @p node's telemetry buffer. Injection stamps a fresh
     * Message::traceId (src-node buffer); land/deliver/back-pressure
     * record on the destination's buffer; intermediate hops record on
     * the buffer of the shard executing the hop (the router owner), so
     * no buffer is ever written from two shards.
     */
    void
    setTrace(NodeId node, trace::TraceBuffer *buf)
    {
        trace_[node] = buf;
    }

    /**
     * Attach a fault injector (nullptr = fault-free; the default).
     * Faults are applied per link traversal: drops become link-level
     * retransmissions (latency + repeated occupancy, never loss),
     * duplicates are filtered by link sequence at the landing buffer,
     * jitter and bounded reordering respect the per-(src, dst, vnet)
     * FIFO order the protocol relies on. Decisions draw from the
     * executing shard's stream, so they are deterministic under any
     * host-thread count.
     */
    void setFaultInjector(fault::FaultInjector *fi) { faults_ = fi; }

    /** Inject a message; source MC has already applied its own queuing. */
    void inject(const proto::Message &msg);

    /** Destination drained an NI queue; try the landing buffer again. */
    void poke(NodeId node, std::uint8_t vnet);

    /** Hop count between two nodes (0 for self). */
    unsigned hopCount(NodeId a, NodeId b) const;

    /**
     * Conservative PDES lookahead: the minimum latency any single
     * cross-shard scheduling step adds (one hop). Every cross-shard
     * event posted inside a window of this length is due no earlier
     * than the next window, which is what makes barrier-synchronized
     * windows safe.
     */
    Tick lookahead() const { return params_.hopLatency; }

    /**
     * Minimum end-to-end latency of any cross-node message: the
     * cheapest (src, dst) pair's hop count times hopLatency, plus the
     * final-hop serialisation of the smallest (header-only) message.
     * Always >= lookahead(); with the documented parameters a
     * same-router pair costs 2 hops x 25 ns + 16 ns = 66 ns.
     */
    Tick minCrossNodeLatency() const;

    /** All landing buffers empty and no messages in flight? */
    bool
    quiescent() const
    {
        std::int64_t flight = 0;
        for (const Slice &s : slices_)
            flight += s.flightDelta;
        return flight == 0;
    }

    /** Dump in-flight count and landing-buffer occupancy (wedge report). */
    void debugState(std::FILE *out) const;

    // ---- Snapshot support --------------------------------------------

    /** Final-hop / loopback arrival into the landing buffer. */
    struct LandEv
    {
        static constexpr std::uint32_t kSnapId = snap::evNetLand;
        Network *net;
        proto::Message m;

        void operator()() const { net->land(m); }

        void snapEncode(snap::Ser &s) const { proto::snapPut(s, m); }
    };

    /** Head arrival at an intermediate router. */
    struct HopEv
    {
        static constexpr std::uint32_t kSnapId = snap::evNetHop;
        Network *net;
        proto::Message m;
        unsigned router;

        void operator()() const { net->hop(m, router); }

        void
        snapEncode(snap::Ser &s) const
        {
            proto::snapPut(s, m);
            s.u32(router);
        }
    };

    /** Landing-buffer delivery retry after NI back-pressure. */
    struct RetryEv
    {
        static constexpr std::uint32_t kSnapId = snap::evNetRetry;
        Network *net;
        NodeId node;
        std::uint8_t vnet;

        void
        operator()() const
        {
            net->retryScheduled_[static_cast<std::size_t>(node) *
                                     proto::numVnets +
                                 vnet] = 0;
            net->tryDeliver(node, vnet);
        }

        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(node);
            s.u8(vnet);
        }
    };

    void saveState(snap::Ser &out) const;
    void restoreState(snap::Des &in);
    void registerSnapEvents(snap::EventCodec &codec);

    // ---- Stats (per-shard slices, merged on read) ---------------------

    std::uint64_t msgsInjected() const;
    std::uint64_t bytesInjected() const;
    Distribution hopDist() const;

  private:
    struct Link
    {
        Tick busyUntil = 0;
        /**
         * Latest scheduled arrival over this link. A wire is a FIFO,
         * so fault recovery/jitter clamps later arrivals to at least
         * this — without faults arrivals are already monotone and the
         * clamp never fires (disabled runs stay bit-identical).
         */
        Tick lastArrival = 0;
        Counter msgs;
    };

    /**
     * Per-shard mutable state: injection stats and the traceId
     * allocator, touched only by the owning shard's thread (aligned so
     * neighbouring slices never false-share).
     */
    struct alignas(64) Slice
    {
        Counter msgsInjected;
        Counter bytesInjected;
        Distribution hopDist;
        std::int64_t flightDelta = 0; ///< Injections minus deliveries.
        std::uint32_t nextTraceId = 0;
        std::uint64_t lost = 0; ///< droploss-bug casualties.
    };

    unsigned routerOf(NodeId n) const { return n / params_.nodesPerRouter; }

    /** Shard owning node @p n (identity when sharded, else 0). */
    unsigned
    shardOf(NodeId n) const
    {
        return shards_->count() == 1 ? 0u : static_cast<unsigned>(n);
    }

    /** Shard owning router @p r: the shard of its first attached node. */
    unsigned
    routerOwner(unsigned r) const
    {
        return shardOf(static_cast<NodeId>(
            std::min<unsigned>(r * params_.nodesPerRouter,
                               params_.numNodes - 1)));
    }

    /** The calling thread's shard (0 in the barrier phase / wrapper). */
    unsigned
    execShard() const
    {
        unsigned s = shards_->current();
        return s == ShardSet::noShard ? 0u : s;
    }

    Tick now() const { return shards_->queue(execShard()).curTick(); }

    /** Next router on the e-cube path from @p cur towards @p dst. */
    unsigned nextRouter(unsigned cur, unsigned dst) const;

    Link &linkBetween(unsigned r_from, unsigned r_to);

    void hop(proto::Message msg, unsigned cur_router);
    void land(const proto::Message &msg);
    void tryDeliver(NodeId node, std::uint8_t vnet);

    /**
     * Traverse @p link with @p msg: reserve bandwidth, apply link
     * faults (drop/retransmit, jitter), schedule @p fn at arrival on
     * shard @p dst_shard.
     */
    void traverse(Link &link, const proto::Message &msg,
                  EventQueue::Callback fn, unsigned dst_shard,
                  bool final_hop = false);

    std::unique_ptr<ShardSet> ownedShards_; ///< Wrapper-ctor only.
    ShardSet *shards_;
    NetworkParams params_;
    unsigned numRouters_;
    unsigned dims_;
    std::vector<DeliverFn> deliver_;
    // links_[from * numRouters_ + to] for router-router links.
    std::vector<Link> links_;
    // Per-node attach links (to router and from router).
    std::vector<Link> nodeLinksIn_;   // router -> node
    std::vector<Link> nodeLinksOut_;  // node -> router
    // Landing buffers: per (node, vnet) FIFO awaiting NI acceptance.
    std::vector<std::deque<proto::Message>> landing_;
    // One byte per (node, vnet), NOT vector<bool>: a packed bit-vector
    // would make flags of different destination shards share a word,
    // which is a data race even though each flag has a single owner.
    std::vector<std::uint8_t> retryScheduled_;
    std::vector<Slice> slices_; ///< One per shard.
    std::vector<trace::TraceBuffer *> trace_; ///< Per node; null = off.
    fault::FaultInjector *faults_ = nullptr;  ///< Null = fault-free.

    static constexpr Tick retryInterval = 5 * tickPerNs;
};

} // namespace smtp

#endif // SMTP_NETWORK_NETWORK_HPP
