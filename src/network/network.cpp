#include "network.hpp"

#include <type_traits>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace smtp
{

Network::Network(EventQueue &eq, const NetworkParams &params)
    : eq_(eq), params_(params)
{
    SMTP_ASSERT(params.numNodes >= 1, "network needs at least one node");
    numRouters_ =
        std::max(1u, params.numNodes / std::max(1u, params.nodesPerRouter));
    SMTP_ASSERT(isPow2(numRouters_), "router count must be a power of two");
    dims_ = floorLog2(numRouters_);

    deliver_.resize(params.numNodes);
    links_.resize(static_cast<std::size_t>(numRouters_) * numRouters_);
    nodeLinksIn_.resize(params.numNodes);
    nodeLinksOut_.resize(params.numNodes);
    landing_.resize(static_cast<std::size_t>(params.numNodes) *
                    proto::numVnets);
    retryScheduled_.assign(landing_.size(), false);
    trace_.assign(params.numNodes, nullptr);
}

void
Network::attach(NodeId node, DeliverFn fn)
{
    SMTP_ASSERT(node < deliver_.size(), "attach beyond node count");
    deliver_[node] = std::move(fn);
}

unsigned
Network::hopCount(NodeId a, NodeId b) const
{
    if (a == b)
        return 0;
    unsigned ra = routerOf(a);
    unsigned rb = routerOf(b);
    // node->router + router hops + router->node; same-router pairs still
    // make one router traversal.
    return 2 + popCount(ra ^ rb);
}

unsigned
Network::nextRouter(unsigned cur, unsigned dst) const
{
    unsigned diff = cur ^ dst;
    SMTP_ASSERT(diff != 0, "nextRouter at destination");
    unsigned dim = countTrailingZeros(diff);
    return cur ^ (1u << dim);
}

Network::Link &
Network::linkBetween(unsigned r_from, unsigned r_to)
{
    return links_[static_cast<std::size_t>(r_from) * numRouters_ + r_to];
}

void
Network::traverse(Link &link, const proto::Message &msg,
                  EventQueue::Callback fn, bool final_hop)
{
    unsigned bytes = proto::msgBytes(msg.type);
    Tick now = eq_.curTick();
    Tick start = std::max(now, link.busyUntil);
    auto ser = static_cast<Tick>(static_cast<double>(bytes) /
                                 params_.linkBytesPerTick);
    link.busyUntil = start + ser;
    ++link.msgs;
    // Virtual cut-through: the head advances after each hop's latency
    // while the body streams behind it (each link stays busy for the
    // serialisation time); the tail — and thus delivery — trails the
    // head by one serialisation time, charged on the final hop only.
    Tick arrive = start + params_.hopLatency + (final_hop ? ser : 0);
    if (faults_ != nullptr) {
        unsigned retx = faults_->linkRetransmits();
        if (retx > 0) {
            if (faults_->plan().injectDropWithoutRetransmit) {
                // Deliberate bug hook: the corrupted transmission is
                // never retried. The message is gone, inFlight_ stays
                // elevated, and the watchdog must notice.
                ++faults_->netLost;
                ++lostMessages_;
                SMTP_TRACE_EVENT(faults_->trace(), now,
                                 trace::EventId::FaultNetLost,
                                 trace::packNet(msg));
                return;
            }
            // Link-level retransmit-on-timeout: each corrupted
            // transmission occupies the wire once more and costs one
            // LLP timeout before the retry goes out.
            link.busyUntil += static_cast<Tick>(retx) * ser;
            arrive +=
                static_cast<Tick>(retx) * faults_->plan().retransmitTimeout;
            for (unsigned i = 0; i < retx; ++i) {
                SMTP_TRACE_EVENT(faults_->trace(), now,
                                 trace::EventId::FaultNetDrop,
                                 trace::packNet(msg));
            }
        }
        Tick extra = faults_->linkExtraDelay();
        if (extra > 0) {
            arrive += extra;
            SMTP_TRACE_EVENT(faults_->trace(), now,
                             trace::EventId::FaultNetDelay,
                             trace::packNet(msg));
        }
        // The wire is a FIFO: recovery and jitter delay later traffic
        // behind the affected message instead of reordering the link.
        arrive = std::max(arrive, link.lastArrival);
        link.lastArrival = arrive;
    }
    eq_.schedule(arrive, std::move(fn));
}

void
Network::inject(const proto::Message &msg)
{
    SMTP_ASSERT(msg.dest < params_.numNodes, "message to unknown node %u",
                msg.dest);
    ++msgsInjected;
    bytesInjected += proto::msgBytes(msg.type);
    hopDist.sample(hopCount(msg.src, msg.dest));
    ++inFlight_;

    proto::Message m = msg;
    if constexpr (trace::compiledIn) {
        if (trace_[m.src] != nullptr) {
            if (m.traceId == 0)
                m.traceId = ++nextTraceId_;
            trace_[m.src]->record(eq_.curTick(), trace::EventId::NetInject,
                                  trace::packNet(m));
        }
    }

    if (m.src == m.dest) {
        // Loopback through the NI without touching the fabric; charge a
        // single hop of latency for the controller-internal turnaround.
        static_assert(EventQueue::Callback::storesInline<LandEv>,
                      "message delivery must stay on the inline fast path");
        eq_.scheduleIn(params_.hopLatency, LandEv{this, m});
        return;
    }

    unsigned src_router = routerOf(m.src);
    static_assert(EventQueue::Callback::storesInline<HopEv>,
                  "hop continuations must stay on the inline fast path");
    traverse(nodeLinksOut_[m.src], m, HopEv{this, m, src_router});
}

void
Network::hop(proto::Message msg, unsigned cur_router)
{
    SMTP_TRACE_EVENT(trace_[msg.dest], eq_.curTick(),
                     trace::EventId::NetHop, trace::packNet(msg));
    unsigned dst_router = routerOf(msg.dest);
    if (cur_router == dst_router) {
        traverse(nodeLinksIn_[msg.dest], msg, LandEv{this, msg}, true);
        return;
    }
    unsigned next = nextRouter(cur_router, dst_router);
    traverse(linkBetween(cur_router, next), msg, HopEv{this, msg, next});
}

void
Network::land(const proto::Message &msg)
{
    SMTP_TRACE_EVENT(trace_[msg.dest], eq_.curTick(),
                     trace::EventId::NetLand, trace::packNet(msg));
    auto vnet = proto::vnetOf(msg.type);
    auto &q = landing_[static_cast<std::size_t>(msg.dest) *
                           proto::numVnets + vnet];
    q.push_back(msg);
    if (faults_ != nullptr && msg.src != msg.dest) {
        // Message is trivially copyable, so a duplicated (or requeued)
        // copy aliases no live state — the mshr/traceId it carries are
        // plain values echoed back by the protocol, never pointers.
        static_assert(std::is_trivially_copyable_v<proto::Message>,
                      "fault duplication requires value-semantics "
                      "messages");
        if (faults_->linkDuplicate()) {
            proto::Message dup = msg;
            dup.flags |= proto::flagLinkDup;
            ++inFlight_;
            q.push_back(dup);
            SMTP_TRACE_EVENT(faults_->trace(), eq_.curTick(),
                             trace::EventId::FaultNetDup,
                             trace::packNet(msg));
        }
        if (q.size() >= 2 && faults_->landingReorder()) {
            // Bounded reordering: swap adjacent landings only when they
            // come from different sources, preserving the
            // per-(src, dst, vnet) FIFO the protocol depends on.
            auto &a = q[q.size() - 2];
            auto &b = q.back();
            if (a.src != b.src) {
                std::swap(a, b);
                ++faults_->netReorders;
                SMTP_TRACE_EVENT(faults_->trace(), eq_.curTick(),
                                 trace::EventId::FaultNetReorder,
                                 trace::packNet(msg));
            }
        }
    }
    tryDeliver(msg.dest, vnet);
}

void
Network::poke(NodeId node, std::uint8_t vnet)
{
    tryDeliver(node, vnet);
}

void
Network::tryDeliver(NodeId node, std::uint8_t vnet)
{
    auto idx = static_cast<std::size_t>(node) * proto::numVnets + vnet;
    auto &q = landing_[idx];
    while (!q.empty()) {
        SMTP_ASSERT(deliver_[node], "no NI attached to node %u", node);
        if (q.front().flags & proto::flagLinkDup) {
            // Link sequence numbers identify the duplicate; it is
            // discarded before the NI (and before any NetDeliver
            // event, keeping traceId stitching one-to-one).
            if (faults_ != nullptr)
                ++faults_->netDupsFiltered;
            q.pop_front();
            --inFlight_;
            continue;
        }
        if (!deliver_[node](q.front())) {
            SMTP_TRACE_EVENT(trace_[node], eq_.curTick(),
                             trace::EventId::NetBackpressure,
                             trace::packBackpressure(vnet, q.size()));
            break;
        }
        SMTP_TRACE_EVENT(trace_[node], eq_.curTick(),
                         trace::EventId::NetDeliver,
                         trace::packNet(q.front()));
        q.pop_front();
        --inFlight_;
    }
    if (!q.empty() && !retryScheduled_[idx]) {
        retryScheduled_[idx] = true;
        eq_.scheduleIn(retryInterval, RetryEv{this, node, vnet});
    }
}

void
Network::saveState(snap::Ser &out) const
{
    auto putLink = [](snap::Ser &s, const Link &l) {
        s.u64(l.busyUntil);
        s.u64(l.lastArrival);
        s.u64(l.msgs.value());
    };
    out.seq(links_, putLink);
    out.seq(nodeLinksIn_, putLink);
    out.seq(nodeLinksOut_, putLink);
    out.seq(landing_, [](snap::Ser &s, const std::deque<proto::Message> &q) {
        s.seq(q, [](snap::Ser &s2, const proto::Message &m) {
            proto::snapPut(s2, m);
        });
    });
    out.seq(retryScheduled_,
            [](snap::Ser &s, bool v) { s.b(v); });
    out.u64(inFlight_);
    out.u32(nextTraceId_);
    out.u64(lostMessages_);
    msgsInjected.saveState(out);
    bytesInjected.saveState(out);
    hopDist.saveState(out);
}

void
Network::restoreState(snap::Des &in)
{
    auto getLinks = [&](std::vector<Link> &links) {
        std::uint64_t n = in.count(24);
        if (in.ok() && n != links.size()) {
            in.fail("snapshot link count does not match topology");
            return;
        }
        for (auto &l : links) {
            l.busyUntil = in.u64();
            l.lastArrival = in.u64();
            l.msgs.reset();
            l.msgs += in.u64();
        }
    };
    getLinks(links_);
    getLinks(nodeLinksIn_);
    getLinks(nodeLinksOut_);
    std::uint64_t nq = in.count(8);
    if (in.ok() && nq != landing_.size()) {
        in.fail("snapshot landing-buffer count does not match topology");
        return;
    }
    for (auto &q : landing_) {
        q.clear();
        std::uint64_t n = in.count(22);
        for (std::uint64_t i = 0; i < n && in.ok(); ++i)
            q.push_back(proto::snapGetMessage(in));
    }
    std::uint64_t nr = in.count(1);
    if (in.ok() && nr != retryScheduled_.size()) {
        in.fail("snapshot retry-flag count does not match topology");
        return;
    }
    for (std::size_t i = 0; i < retryScheduled_.size(); ++i)
        retryScheduled_[i] = in.bl();
    inFlight_ = in.u64();
    nextTraceId_ = in.u32();
    lostMessages_ = in.u64();
    msgsInjected.restoreState(in);
    bytesInjected.restoreState(in);
    hopDist.restoreState(in);
}

void
Network::registerSnapEvents(snap::EventCodec &codec)
{
    codec.add(snap::evNetLand, [this](snap::Des &d) {
        return EventQueue::Callback(LandEv{this, proto::snapGetMessage(d)});
    });
    codec.add(snap::evNetHop, [this](snap::Des &d) {
        proto::Message m = proto::snapGetMessage(d);
        unsigned router = d.u32();
        return EventQueue::Callback(HopEv{this, m, router});
    });
    codec.add(snap::evNetRetry, [this](snap::Des &d) {
        NodeId node = d.u16();
        std::uint8_t vnet = d.u8();
        return EventQueue::Callback(RetryEv{this, node, vnet});
    });
}

void
Network::debugState(std::FILE *out) const
{
    std::fprintf(out, "  net: inFlight=%llu\n",
                 static_cast<unsigned long long>(inFlight_));
    if (lostMessages_ != 0) {
        std::fprintf(out,
                     "  net: %llu message(s) LOST by the "
                     "drop-without-retransmit bug hook\n",
                     static_cast<unsigned long long>(lostMessages_));
    }
    for (std::size_t n = 0; n < deliver_.size(); ++n) {
        for (unsigned v = 0; v < proto::numVnets; ++v) {
            const auto &q = landing_[n * proto::numVnets + v];
            if (q.empty())
                continue;
            const auto &head = q.front();
            std::fprintf(out,
                         "  net: landing n%zu vnet%u: %zu queued "
                         "(head %s addr=%llx src=%u)\n",
                         n, v, q.size(),
                         std::string(proto::msgTypeName(head.type)).c_str(),
                         static_cast<unsigned long long>(head.addr),
                         unsigned(head.src));
        }
    }
}

} // namespace smtp
