#include "network.hpp"

#include <algorithm>
#include <type_traits>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace smtp
{

Network::Network(ShardSet &shards, const NetworkParams &params)
    : shards_(&shards), params_(params)
{
    SMTP_ASSERT(params.numNodes >= 1, "network needs at least one node");
    SMTP_ASSERT(shards.count() == 1 || shards.count() == params.numNodes,
                "shard set must be single or one shard per node");
    numRouters_ =
        std::max(1u, params.numNodes / std::max(1u, params.nodesPerRouter));
    SMTP_ASSERT(isPow2(numRouters_), "router count must be a power of two");
    dims_ = floorLog2(numRouters_);

    deliver_.resize(params.numNodes);
    links_.resize(static_cast<std::size_t>(numRouters_) * numRouters_);
    nodeLinksIn_.resize(params.numNodes);
    nodeLinksOut_.resize(params.numNodes);
    landing_.resize(static_cast<std::size_t>(params.numNodes) *
                    proto::numVnets);
    retryScheduled_.assign(landing_.size(), 0);
    slices_.resize(shards.count());
    trace_.assign(params.numNodes, nullptr);
}

Network::Network(EventQueue &eq, const NetworkParams &params)
    : Network(*new ShardSet(eq), params)
{
    // Adopt the wrapper set allocated by the delegated ctor argument.
    ownedShards_.reset(shards_);
}

void
Network::attach(NodeId node, DeliverFn fn)
{
    SMTP_ASSERT(node < deliver_.size(), "attach beyond node count");
    deliver_[node] = std::move(fn);
}

unsigned
Network::hopCount(NodeId a, NodeId b) const
{
    if (a == b)
        return 0;
    unsigned ra = routerOf(a);
    unsigned rb = routerOf(b);
    // node->router + router hops + router->node; same-router pairs still
    // make one router traversal.
    return 2 + popCount(ra ^ rb);
}

Tick
Network::minCrossNodeLatency() const
{
    // Header-only messages are the smallest thing on the wire; their
    // tail trails the head by one serialisation on the final hop.
    auto min_ser = static_cast<Tick>(
        static_cast<double>(proto::msgHeaderBytes) / params_.linkBytesPerTick);
    if (params_.numNodes < 2)
        return params_.hopLatency + min_ser; // loopback turnaround
    unsigned min_hops = ~0u;
    for (NodeId a = 0; a < params_.numNodes; ++a) {
        for (NodeId b = 0; b < params_.numNodes; ++b) {
            if (a != b)
                min_hops = std::min(min_hops, hopCount(a, b));
        }
    }
    return static_cast<Tick>(min_hops) * params_.hopLatency + min_ser;
}

unsigned
Network::nextRouter(unsigned cur, unsigned dst) const
{
    unsigned diff = cur ^ dst;
    SMTP_ASSERT(diff != 0, "nextRouter at destination");
    unsigned dim = countTrailingZeros(diff);
    return cur ^ (1u << dim);
}

Network::Link &
Network::linkBetween(unsigned r_from, unsigned r_to)
{
    return links_[static_cast<std::size_t>(r_from) * numRouters_ + r_to];
}

void
Network::traverse(Link &link, const proto::Message &msg,
                  EventQueue::Callback fn, unsigned dst_shard,
                  bool final_hop)
{
    unsigned bytes = proto::msgBytes(msg.type);
    Tick t = now();
    Tick start = std::max(t, link.busyUntil);
    auto ser = static_cast<Tick>(static_cast<double>(bytes) /
                                 params_.linkBytesPerTick);
    link.busyUntil = start + ser;
    ++link.msgs;
    // Virtual cut-through: the head advances after each hop's latency
    // while the body streams behind it (each link stays busy for the
    // serialisation time); the tail — and thus delivery — trails the
    // head by one serialisation time, charged on the final hop only.
    Tick arrive = start + params_.hopLatency + (final_hop ? ser : 0);
    if (faults_ != nullptr) {
        unsigned sh = execShard();
        unsigned retx = faults_->linkRetransmits(sh);
        if (retx > 0) {
            if (faults_->plan().injectDropWithoutRetransmit) {
                // Deliberate bug hook: the corrupted transmission is
                // never retried. The message is gone, the in-flight
                // count stays elevated, and the watchdog must notice.
                ++faults_->slice(sh).netLost;
                ++slices_[sh].lost;
                SMTP_TRACE_EVENT(faults_->trace(sh), t,
                                 trace::EventId::FaultNetLost,
                                 trace::packNet(msg));
                return;
            }
            // Link-level retransmit-on-timeout: each corrupted
            // transmission occupies the wire once more and costs one
            // LLP timeout before the retry goes out.
            link.busyUntil += static_cast<Tick>(retx) * ser;
            arrive +=
                static_cast<Tick>(retx) * faults_->plan().retransmitTimeout;
            for (unsigned i = 0; i < retx; ++i) {
                SMTP_TRACE_EVENT(faults_->trace(sh), t,
                                 trace::EventId::FaultNetDrop,
                                 trace::packNet(msg));
            }
        }
        Tick extra = faults_->linkExtraDelay(sh);
        if (extra > 0) {
            arrive += extra;
            SMTP_TRACE_EVENT(faults_->trace(sh), t,
                             trace::EventId::FaultNetDelay,
                             trace::packNet(msg));
        }
        // The wire is a FIFO: recovery and jitter delay later traffic
        // behind the affected message instead of reordering the link.
        arrive = std::max(arrive, link.lastArrival);
        link.lastArrival = arrive;
    }
    shards_->schedule(dst_shard, arrive, std::move(fn));
}

void
Network::inject(const proto::Message &msg)
{
    SMTP_ASSERT(msg.dest < params_.numNodes, "message to unknown node %u",
                msg.dest);
    unsigned sh = execShard();
    Slice &sl = slices_[sh];
    ++sl.msgsInjected;
    sl.bytesInjected += proto::msgBytes(msg.type);
    sl.hopDist.sample(hopCount(msg.src, msg.dest));
    ++sl.flightDelta;

    proto::Message m = msg;
    if constexpr (trace::compiledIn) {
        if (trace_[m.src] != nullptr) {
            if (m.traceId == 0) {
                // Shard-partitioned id space: unique machine-wide with
                // no cross-shard coordination, stable across host
                // thread counts.
                m.traceId = ((sh + 1u) << 24) | ++sl.nextTraceId;
            }
            trace_[m.src]->record(now(), trace::EventId::NetInject,
                                  trace::packNet(m));
        }
    }

    if (m.src == m.dest) {
        // Loopback through the NI without touching the fabric; charge a
        // single hop of latency for the controller-internal turnaround.
        static_assert(EventQueue::Callback::storesInline<LandEv>,
                      "message delivery must stay on the inline fast path");
        shards_->schedule(shardOf(m.dest), now() + params_.hopLatency,
                          LandEv{this, m});
        return;
    }

    unsigned src_router = routerOf(m.src);
    static_assert(EventQueue::Callback::storesInline<HopEv>,
                  "hop continuations must stay on the inline fast path");
    traverse(nodeLinksOut_[m.src], m, HopEv{this, m, src_router},
             routerOwner(src_router));
}

void
Network::hop(proto::Message msg, unsigned cur_router)
{
    // Recorded on the executing shard's (router owner's) buffer: the
    // destination's buffer may belong to another shard mid-window.
    SMTP_TRACE_EVENT(trace_[execShard()], now(), trace::EventId::NetHop,
                     trace::packNet(msg));
    unsigned dst_router = routerOf(msg.dest);
    if (cur_router == dst_router) {
        traverse(nodeLinksIn_[msg.dest], msg, LandEv{this, msg},
                 shardOf(msg.dest), true);
        return;
    }
    unsigned next = nextRouter(cur_router, dst_router);
    traverse(linkBetween(cur_router, next), msg, HopEv{this, msg, next},
             routerOwner(next));
}

void
Network::land(const proto::Message &msg)
{
    SMTP_TRACE_EVENT(trace_[msg.dest], now(),
                     trace::EventId::NetLand, trace::packNet(msg));
    auto vnet = proto::vnetOf(msg.type);
    auto &q = landing_[static_cast<std::size_t>(msg.dest) *
                           proto::numVnets + vnet];
    q.push_back(msg);
    if (faults_ != nullptr && msg.src != msg.dest) {
        unsigned sh = execShard();
        // Message is trivially copyable, so a duplicated (or requeued)
        // copy aliases no live state — the mshr/traceId it carries are
        // plain values echoed back by the protocol, never pointers.
        static_assert(std::is_trivially_copyable_v<proto::Message>,
                      "fault duplication requires value-semantics "
                      "messages");
        if (faults_->linkDuplicate(sh)) {
            proto::Message dup = msg;
            dup.flags |= proto::flagLinkDup;
            ++slices_[sh].flightDelta;
            q.push_back(dup);
            SMTP_TRACE_EVENT(faults_->trace(sh), now(),
                             trace::EventId::FaultNetDup,
                             trace::packNet(msg));
        }
        if (q.size() >= 2 && faults_->landingReorder(sh)) {
            // Bounded reordering: swap adjacent landings only when they
            // come from different sources, preserving the
            // per-(src, dst, vnet) FIFO the protocol depends on.
            auto &a = q[q.size() - 2];
            auto &b = q.back();
            if (a.src != b.src) {
                std::swap(a, b);
                ++faults_->slice(sh).netReorders;
                SMTP_TRACE_EVENT(faults_->trace(sh), now(),
                                 trace::EventId::FaultNetReorder,
                                 trace::packNet(msg));
            }
        }
    }
    tryDeliver(msg.dest, vnet);
}

void
Network::poke(NodeId node, std::uint8_t vnet)
{
    tryDeliver(node, vnet);
}

void
Network::tryDeliver(NodeId node, std::uint8_t vnet)
{
    auto idx = static_cast<std::size_t>(node) * proto::numVnets + vnet;
    auto &q = landing_[idx];
    unsigned sh = execShard();
    while (!q.empty()) {
        SMTP_ASSERT(deliver_[node], "no NI attached to node %u", node);
        if (q.front().flags & proto::flagLinkDup) {
            // Link sequence numbers identify the duplicate; it is
            // discarded before the NI (and before any NetDeliver
            // event, keeping traceId stitching one-to-one).
            if (faults_ != nullptr)
                ++faults_->slice(sh).netDupsFiltered;
            q.pop_front();
            --slices_[sh].flightDelta;
            continue;
        }
        if (!deliver_[node](q.front())) {
            SMTP_TRACE_EVENT(trace_[node], now(),
                             trace::EventId::NetBackpressure,
                             trace::packBackpressure(vnet, q.size()));
            break;
        }
        SMTP_TRACE_EVENT(trace_[node], now(),
                         trace::EventId::NetDeliver,
                         trace::packNet(q.front()));
        q.pop_front();
        --slices_[sh].flightDelta;
    }
    if (!q.empty() && !retryScheduled_[idx]) {
        retryScheduled_[idx] = 1;
        static_assert(EventQueue::Callback::storesInline<RetryEv>,
                      "delivery retries must stay on the inline fast path");
        shards_->schedule(shardOf(node), now() + retryInterval,
                          RetryEv{this, node, vnet});
    }
}

std::uint64_t
Network::msgsInjected() const
{
    std::uint64_t n = 0;
    for (const Slice &s : slices_)
        n += s.msgsInjected.value();
    return n;
}

std::uint64_t
Network::bytesInjected() const
{
    std::uint64_t n = 0;
    for (const Slice &s : slices_)
        n += s.bytesInjected.value();
    return n;
}

Distribution
Network::hopDist() const
{
    Distribution d;
    for (const Slice &s : slices_)
        d.merge(s.hopDist);
    return d;
}

void
Network::saveState(snap::Ser &out) const
{
    auto putLink = [](snap::Ser &s, const Link &l) {
        s.u64(l.busyUntil);
        s.u64(l.lastArrival);
        s.u64(l.msgs.value());
    };
    out.seq(links_, putLink);
    out.seq(nodeLinksIn_, putLink);
    out.seq(nodeLinksOut_, putLink);
    out.seq(landing_, [](snap::Ser &s, const std::deque<proto::Message> &q) {
        s.seq(q, [](snap::Ser &s2, const proto::Message &m) {
            proto::snapPut(s2, m);
        });
    });
    out.seq(retryScheduled_,
            [](snap::Ser &s, bool v) { s.b(v); });
    out.u64(slices_.size());
    for (const Slice &s : slices_) {
        out.u64(static_cast<std::uint64_t>(s.flightDelta));
        out.u32(s.nextTraceId);
        out.u64(s.lost);
        s.msgsInjected.saveState(out);
        s.bytesInjected.saveState(out);
        s.hopDist.saveState(out);
    }
}

void
Network::restoreState(snap::Des &in)
{
    auto getLinks = [&](std::vector<Link> &links) {
        std::uint64_t n = in.count(24);
        if (in.ok() && n != links.size()) {
            in.fail("snapshot link count does not match topology");
            return;
        }
        for (auto &l : links) {
            l.busyUntil = in.u64();
            l.lastArrival = in.u64();
            l.msgs.reset();
            l.msgs += in.u64();
        }
    };
    getLinks(links_);
    getLinks(nodeLinksIn_);
    getLinks(nodeLinksOut_);
    std::uint64_t nq = in.count(8);
    if (in.ok() && nq != landing_.size()) {
        in.fail("snapshot landing-buffer count does not match topology");
        return;
    }
    for (auto &q : landing_) {
        q.clear();
        std::uint64_t n = in.count(22);
        for (std::uint64_t i = 0; i < n && in.ok(); ++i)
            q.push_back(proto::snapGetMessage(in));
    }
    std::uint64_t nr = in.count(1);
    if (in.ok() && nr != retryScheduled_.size()) {
        in.fail("snapshot retry-flag count does not match topology");
        return;
    }
    for (std::size_t i = 0; i < retryScheduled_.size(); ++i)
        retryScheduled_[i] = in.bl();
    if (in.u64() != slices_.size()) {
        in.fail("snapshot network shard count does not match machine");
        return;
    }
    for (Slice &s : slices_) {
        s.flightDelta = static_cast<std::int64_t>(in.u64());
        s.nextTraceId = in.u32();
        s.lost = in.u64();
        s.msgsInjected.restoreState(in);
        s.bytesInjected.restoreState(in);
        s.hopDist.restoreState(in);
    }
}

void
Network::registerSnapEvents(snap::EventCodec &codec)
{
    codec.add(snap::evNetLand, [this](snap::Des &d) {
        return EventQueue::Callback(LandEv{this, proto::snapGetMessage(d)});
    });
    codec.add(snap::evNetHop, [this](snap::Des &d) {
        proto::Message m = proto::snapGetMessage(d);
        unsigned router = d.u32();
        return EventQueue::Callback(HopEv{this, m, router});
    });
    codec.add(snap::evNetRetry, [this](snap::Des &d) {
        NodeId node = d.u16();
        std::uint8_t vnet = d.u8();
        return EventQueue::Callback(RetryEv{this, node, vnet});
    });
}

void
Network::debugState(std::FILE *out) const
{
    std::int64_t flight = 0;
    std::uint64_t lost = 0;
    for (const Slice &s : slices_) {
        flight += s.flightDelta;
        lost += s.lost;
    }
    std::fprintf(out, "  net: inFlight=%lld\n",
                 static_cast<long long>(flight));
    if (lost != 0) {
        std::fprintf(out,
                     "  net: %llu message(s) LOST by the "
                     "drop-without-retransmit bug hook\n",
                     static_cast<unsigned long long>(lost));
    }
    for (std::size_t n = 0; n < deliver_.size(); ++n) {
        for (unsigned v = 0; v < proto::numVnets; ++v) {
            const auto &q = landing_[n * proto::numVnets + v];
            if (q.empty())
                continue;
            const auto &head = q.front();
            std::fprintf(out,
                         "  net: landing n%zu vnet%u: %zu queued "
                         "(head %s addr=%llx src=%u)\n",
                         n, v, q.size(),
                         std::string(proto::msgTypeName(head.type)).c_str(),
                         static_cast<unsigned long long>(head.addr),
                         unsigned(head.src));
        }
    }
}

} // namespace smtp
