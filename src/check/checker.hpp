/**
 * @file
 * Runtime coherence invariant checker and deadlock watchdog.
 *
 * The checker mirrors every cache line's global state from two
 * independent streams of evidence and cross-checks them:
 *
 *  - cache-side: the L2 hierarchies report every line-state transition
 *    (fill install, eviction, probe downgrade, upgrade grant), from
 *    which the checker maintains per-line sharer/writer bitmasks and
 *    asserts the SWMR invariant on every transition;
 *
 *  - home-side: the memory controllers report every directory-entry
 *    store a protocol handler makes, which the checker validates for
 *    well-formedness (legal state encoding, vector within the node
 *    count, Exclusive/busy states carrying exactly one owner bit) and,
 *    at FullMirror level, records for quiescence-time cross-checks
 *    against the cache-side masks.
 *
 * Because probes apply architecturally at handler dispatch (the
 * serialization point) and exclusive fills are delivered only after
 * all invalidation acks, the install-time SWMR assertions hold exactly
 * — no grace windows are needed.  The directory vector is only
 * checked as a *superset* of the actual sharers (silent Shared drops
 * are part of the protocol).
 *
 * The watchdog tracks the age of every in-flight transaction (MSHRs on
 * the cache side, busy or stale directory entries on the home side).
 * When any exceeds a configurable bound it prints all tracked
 * transactions, component queue occupancies (via registered dump
 * hooks) and the last N protocol-handler dispatches from a ring
 * buffer, then flags a violation — turning a silent simulator hang
 * into a readable report.
 *
 * Thread safety (Asserts level under --exec=parallel:T): every hook is
 * internally serialized by one mutex, and ticks are read through a
 * per-node tick source (each shard's own queue) so no hook ever reads
 * another shard's clock. The SWMR assertions stay exact under parallel
 * shards because causally related transitions on one line are at least
 * one barrier window apart (an exclusive fill is delivered only after
 * the invalidation acks, each a network hop of one lookahead), and
 * same-window unrelated transitions commute on the per-node bitmask.
 * Only the FullMirror quiescence sweeps need a globally serialized
 * schedule; the machine forces one host thread for that level alone —
 * loudly (machine/machine.cpp).
 *
 * Watchdog determinism: under a Machine the scan event is armed at the
 * single-threaded barrier phase (onBarrier) the first time any shard
 * tracks a transaction, and re-arms itself unconditionally from then
 * on — the scan schedule is a pure function of simulated time, so it
 * perturbs window placement identically at every host-thread count.
 * Standalone single-queue harnesses keep the lazy arm-on-track /
 * stop-when-idle behavior so their event loops still drain.
 */

#pragma once

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/cache_array.hpp"
#include "common/log.hpp"
#include "common/types.hpp"
#include "protocol/directory.hpp"
#include "protocol/executor.hpp"
#include "protocol/message.hpp"
#include "sim/eventq.hpp"
#include "sim/stats.hpp"
#include "snap/event_codec.hpp"
#include "trace/trace.hpp"

namespace smtp::check
{

/** How much checking a machine pays for. */
enum class CheckLevel : std::uint8_t {
    Off,        ///< no checker constructed; zero overhead
    Asserts,    ///< per-transition SWMR + directory-write validation + watchdog
    FullMirror, ///< Asserts plus dir/pend mirrors and quiescence sweeps
};

struct CheckerParams
{
    CheckLevel level = CheckLevel::Asserts;
    unsigned nodes = 1;
    /** Panic on the first violation (tests may latch instead). */
    bool abortOnViolation = true;
    /** Depth of the handler-dispatch ring buffer in the wedge report. */
    unsigned ringEntries = 128;
    /** A transaction older than this is considered wedged. */
    Tick watchdogMaxAge = 2 * tickPerMs;
    /** How often the watchdog sweeps its tracked-transaction table. */
    Tick watchdogScanInterval = 50 * tickPerUs;
};

class Checker
{
  public:
    Checker(EventQueue &eq, const proto::DirFormat &fmt,
        const CheckerParams &params);

    CheckLevel level() const { return params_.level; }
    bool fullMirror() const { return params_.level == CheckLevel::FullMirror; }

    // ------------------------------------------------- cache-side hooks

    /** An L2 line changed state (Inv on eviction/invalidation). */
    void onLineState(NodeId node, Addr line, LineState st, const char *why);

    /** An MSHR was allocated for @p line (watchdog tracking begins). */
    void onMshrAlloc(NodeId node, unsigned idx, Addr line);

    /** The MSHR's transaction completed (watchdog tracking ends). */
    void onMshrFree(NodeId node, unsigned idx);

    // -------------------------------------------------- home-side hooks

    /** A protocol handler is about to run for @p m at @p node. */
    void onDispatch(NodeId node, const proto::Message &m);

    /** The handler dispatched last finished; annotate the ring entry. */
    void onHandlerExecuted(NodeId node, const proto::HandlerTrace &tr);

    /** A handler stored @p entry to the directory entry of @p line. */
    void onDirWrite(NodeId home, Addr line, std::uint64_t entry);

    /** A handler stored word0 of pending-table entry (@p node, @p mshr). */
    void onPendWrite(NodeId node, unsigned mshr, std::uint64_t word0);

    /**
     * A requester crossed the NAK-retry starvation threshold for
     * @p line. Not a violation by itself (the transaction may yet
     * complete) — recorded for the wedge report so a livelocked run
     * names the starving lines.
     */
    void onStarvation(NodeId node, Addr line, unsigned retries);

    // ---------------------------------------------------------- lifecycle

    /** Register a component state dumper for the wedge report. */
    void
    addDumpHook(std::string name, std::function<void(std::FILE *)> fn)
    {
        dumpHooks_.emplace_back(std::move(name), std::move(fn));
    }

    /**
     * Register a forward-progress probe for the watchdog: @p counter
     * must increase while the workload is live; once @p done returns
     * true (or if it is empty, never) the probe stops aging. Catches
     * wedges that produce *no* coherence traffic at all — a consumer
     * spinning on its locally cached line after a lost wakeup — which
     * the transaction-age watchdog is structurally blind to.
     *
     * The counter is read from the watchdog scan (constructor queue,
     * during window execution); probe state must only mutate in the
     * single-threaded barrier phase (workload generation does), so
     * reads never race.
     */
    void addProgressProbe(std::string name,
                          std::function<std::uint64_t()> counter,
                          std::function<bool()> done = {});

    /**
     * Let wedge reports dump the tails of the machine's telemetry
     * buffers next to the dispatch ring (nullptr => ring only).
     */
    void setTraceManager(const trace::TraceManager *tm) { traceMgr_ = tm; }

    /**
     * Per-node clock for hook timestamps. Under the sharded engine a
     * hook runs on the shard owning @p node, so the source must read
     * that shard's queue — never queue 0's — or parallel runs would
     * race on another shard's clock. Unset = the constructor queue.
     */
    void setTickSource(std::function<Tick(NodeId)> fn)
    {
        tickSrc_ = std::move(fn);
    }

    /**
     * Switch the watchdog to barrier-phase arming (see the file
     * comment): track() only requests a scan; onBarrier() — called by
     * the machine from the single-threaded barrier phase — performs
     * the actual scheduling onto the constructor queue, and the scan
     * re-arms itself unconditionally thereafter.
     */
    void enableBarrierArming() { barrierArm_ = true; }

    /** Barrier-phase service point (Machine::runWindow). */
    void onBarrier();

    /**
     * Auto-snapshot on watchdog trip: the hook attempts a machine
     * snapshot and returns the written path ("" on failure). Runs once,
     * before the violation is flagged (which may abort), so a wedged
     * run leaves a restorable machine state next to its report —
     * docs/debugging.md describes the snap_tool diff workflow.
     */
    void
    setWedgeSnapshotHook(std::function<std::string()> fn)
    {
        wedgeSnap_ = std::move(fn);
    }

    /**
     * Cross-check the mirrors at a global quiescent point (no MSHRs,
     * no in-flight messages): SWMR on the cache masks, directory state
     * consistent with the actual holders, no busy/stale entries, no
     * valid pending-table entries, no tracked transactions.
     */
    void verifyQuiescent();

    /**
     * Dump the full wedge report (tracked transactions, component
     * queues, dispatch ring) and flag a violation.  Idempotent: only
     * the first call reports.
     */
    void reportWedge(const char *why);

    /** Write the diagnostic report (no violation flagged). */
    void dumpReport(std::FILE *out);

    /** Record a violation; panics unless abortOnViolation is false. */
    template <typename... Args>
    void
    flag(const char *fmt, Args &&...args)
    {
        char buf[512];
        std::snprintf(buf, sizeof(buf), fmt, std::forward<Args>(args)...);
        violation(buf);
    }

    std::size_t violationCount() const { return violations_.size(); }
    const std::vector<std::string> &violations() const { return violations_; }

    // ------------------------------------------------------------- stats

    Counter lineEvents;  ///< cache line-state transitions observed
    Counter dirWrites;   ///< directory-entry stores audited
    Counter pendWrites;  ///< pending-table word0 stores audited
    Counter dispatches;  ///< handler dispatches ring-buffered
    Counter starvations; ///< retry-threshold crossings reported

  private:
    /** Cache-side + home-side mirror of one line's global state. */
    struct LineMirror
    {
        std::uint64_t sharers = 0;  ///< nodes holding the line Shared
        std::uint64_t writers = 0;  ///< nodes holding it Ex/Mod
        std::uint64_t dirEntry = 0; ///< last directory store (FullMirror)
        bool dirSeen = false;
    };

    /** An in-flight transaction the watchdog is aging. */
    struct Live
    {
        Tick since = 0;
        NodeId node = 0;
        Addr addr = 0;
        const char *kind = "";
    };

    /** A registered forward-progress probe and its aging state. */
    struct Probe
    {
        std::string name;
        std::function<std::uint64_t()> counter;
        std::function<bool()> done;
        std::uint64_t last = 0;
        Tick lastChange = 0;
        /** First scan initializes lastChange lazily (restored runs
         *  begin mid-simulation; tick 0 would flag instantly). */
        bool seen = false;
    };

    /** A starvation-threshold crossing kept for the wedge report. */
    struct Starved
    {
        Tick when = 0;
        NodeId node = 0;
        Addr addr = 0;
        unsigned retries = 0;
    };

    /** Oldest crossings kept verbatim; the counter keeps the total. */
    static constexpr std::size_t maxStarvedRecords = 64;

    static std::uint64_t
    mshrKey(NodeId node, unsigned idx)
    {
        return (1ULL << 62) | (static_cast<std::uint64_t>(node) << 16) | idx;
    }

    static std::uint64_t
    dirKey(Addr line)
    {
        return (1ULL << 63) | line;
    }

    /** Newest events shown per telemetry buffer in a wedge report. */
    static constexpr std::size_t wedgeTraceTail = 32;

    void violation(const std::string &msg);
    void track(std::uint64_t key, NodeId node, Addr addr, const char *kind);
    void untrack(std::uint64_t key);
    void scheduleScan();
    void scan();

    /**
     * The watchdog sweep event. Carries the evWatchdog snap id so the
     * snapshot layer can recognise and *skip* it (mirror state is not
     * serialized; a restored machine re-arms its own watchdog), but it
     * is never encoded or decoded.
     */
    struct ScanEv
    {
        static constexpr std::uint32_t kSnapId = snap::evWatchdog;
        Checker *ck;
        void operator()() const { ck->scan(); }
        void snapEncode(snap::Ser &) const {}
    };

    EventQueue *eq_;
    proto::DirFormat fmt_;
    CheckerParams params_;
    std::uint64_t nodeMask_;

    std::unordered_map<Addr, LineMirror> lines_;
    /** (node << 8 | mshr) -> last word0 written (FullMirror only). */
    std::unordered_map<std::uint32_t, std::uint64_t> pend_;

    /**
     * Cross-node handler-dispatch history as trace events: each
     * dispatch records an McDispatch (aux byte = dispatching node)
     * paired with a HandlerExec annotation, decoded by the shared
     * trace::printEvent in wedge reports. Sized 2x ringEntries so the
     * configured depth still covers that many dispatch *pairs*.
     */
    trace::TraceBuffer ring_;
    /** Last dispatch per node: onHandlerExecuted pairs with its own
     *  node's dispatch, so under parallel shards the pairing state
     *  must not be a single scalar shared across nodes. */
    struct LastDispatch
    {
        bool valid = false;
        std::uint8_t mshr = 0;
        std::uint16_t ack = 0;
    };
    std::vector<LastDispatch> lastDispatch_;
    const trace::TraceManager *traceMgr_ = nullptr;

    std::unordered_map<std::uint64_t, Live> live_;
    std::vector<Probe> probes_;
    std::vector<Starved> starved_;
    bool scanScheduled_ = false;
    bool wedgeReported_ = false;

    /** Serializes every hook (parallel shards call in concurrently). */
    mutable std::recursive_mutex mtx_;
    /** Per-node clock (setTickSource); empty => constructor queue. */
    std::function<Tick(NodeId)> tickSrc_;
    /** Barrier-phase watchdog arming enabled (enableBarrierArming). */
    bool barrierArm_ = false;
    /** A track() ran since the last barrier; onBarrier() arms the scan. */
    bool scanArmRequest_ = false;

    Tick
    tickAt(NodeId node) const
    {
        return tickSrc_ ? tickSrc_(node) : eq_->curTick();
    }

    std::vector<std::string> violations_;
    std::vector<std::pair<std::string, std::function<void(std::FILE *)>>>
        dumpHooks_;
    std::function<std::string()> wedgeSnap_;
};

} // namespace smtp::check
