/**
 * @file
 * CoherenceChecker + Watchdog implementation.  See checker.hpp for the
 * model; the short version is: cache-side transitions maintain
 * sharer/writer bitmasks checked for SWMR on every update, home-side
 * directory stores are validated for well-formedness on every write,
 * and the two views are cross-checked only at quiescence (mid-flight
 * they legitimately disagree — a directory write precedes the
 * invalidations and fills it orders).
 */

#include "check/checker.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace smtp::check
{

using namespace proto;

Checker::Checker(EventQueue &eq, const DirFormat &fmt,
    const CheckerParams &params)
    : eq_(&eq), fmt_(fmt), params_(params),
      ring_("dispatch", 0, trace::Category::Check,
          std::size_t{2} * std::max(1u, params.ringEntries))
{
    SMTP_ASSERT(params_.nodes >= 1 && params_.nodes <= 64,
        "checker: unsupported node count %u", params_.nodes);
    nodeMask_ = params_.nodes == 64 ? ~0ULL : (1ULL << params_.nodes) - 1;
    lastDispatch_.resize(params_.nodes);
}

// ---------------------------------------------------------------- cache

void
Checker::onLineState(NodeId node, Addr line, LineState st, const char *why)
{
    if (isProtocolAddr(line))
        return;
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    ++lineEvents;
    auto &m = lines_[line];
    const std::uint64_t bit = 1ULL << node;
    switch (st) {
    case LineState::Inv:
        m.sharers &= ~bit;
        m.writers &= ~bit;
        break;
    case LineState::Sh:
        if (m.writers & ~bit)
            flag("SWMR violation: node %u takes line %llx Shared (%s) "
                 "while node %u holds it writable",
                unsigned(node), (unsigned long long)line, why,
                unsigned(countTrailingZeros(m.writers & ~bit)));
        m.sharers |= bit;
        m.writers &= ~bit;
        break;
    case LineState::Ex:
    case LineState::Mod:
        if (m.writers & ~bit)
            flag("SWMR violation: node %u takes line %llx writable (%s) "
                 "while node %u already holds it writable",
                unsigned(node), (unsigned long long)line, why,
                unsigned(countTrailingZeros(m.writers & ~bit)));
        if (m.sharers & ~bit)
            flag("SWMR violation: node %u takes line %llx writable (%s) "
                 "while sharer(s) %llx still hold it",
                unsigned(node), (unsigned long long)line, why,
                (unsigned long long)(m.sharers & ~bit));
        m.writers |= bit;
        m.sharers &= ~bit;
        break;
    }
}

void
Checker::onMshrAlloc(NodeId node, unsigned idx, Addr line)
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    track(mshrKey(node, idx), node, line, "mshr");
}

void
Checker::onMshrFree(NodeId node, unsigned idx)
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    untrack(mshrKey(node, idx));
}

// ----------------------------------------------------------------- home

void
Checker::onDispatch(NodeId node, const Message &m)
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    ++dispatches;
    ring_.record(tickAt(node), trace::EventId::McDispatch,
        trace::packMsg(m.addr, m.type, m.src, m.requester,
            static_cast<std::uint8_t>(node)));
    auto &ld = lastDispatch_[node];
    ld.valid = true;
    ld.mshr = m.mshr;
    ld.ack = m.ackCount;
}

void
Checker::onHandlerExecuted(NodeId node, const HandlerTrace &tr)
{
    // Annotate the dispatch just recorded at this node (handler
    // execution is synchronous inside MemController::dispatch).
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    const auto &ld = lastDispatch_[node];
    if (!ld.valid)
        return; // dispatch/executed pairing broke; leave the ring alone
    ring_.record(tickAt(node), trace::EventId::HandlerExec,
        trace::packExec(tr.insts.size(), tr.sends.size(),
            ld.ack, ld.mshr, node));
}

void
Checker::onDirWrite(NodeId home, Addr line, std::uint64_t entry)
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    ++dirWrites;
    const unsigned st = fmt_.state(entry);
    const std::uint64_t vec = fmt_.vector(entry);

    if (st > dirBusyExWaitPut)
        flag("directory write: illegal state %u for line %llx at node %u "
             "(entry %llx)",
            st, (unsigned long long)line, unsigned(home),
            (unsigned long long)entry);
    if (vec & ~nodeMask_)
        flag("directory write: vector %llx for line %llx has bits beyond "
             "the %u-node machine",
            (unsigned long long)vec, (unsigned long long)line,
            params_.nodes);

    const bool busy = st >= dirBusySh && st <= dirBusyExWaitPut;
    switch (st) {
    case dirUnowned:
        if (entry != 0)
            flag("directory write: Unowned entry for line %llx is not "
                 "all-zero (entry %llx)",
                (unsigned long long)line, (unsigned long long)entry);
        break;
    case dirShared:
        if (vec == 0)
            flag("directory write: Shared entry for line %llx has an "
                 "empty sharer vector",
                (unsigned long long)line);
        break;
    default: // Exclusive and all busy states carry exactly one owner bit
        if (popCount(vec) != 1)
            flag("directory write: state %u for line %llx must carry "
                 "exactly one vector bit, got %llx",
                st, (unsigned long long)line, (unsigned long long)vec);
        break;
    }
    if (busy && fmt_.pendingReq(entry) >= params_.nodes)
        flag("directory write: busy entry for line %llx names "
             "out-of-range pending requester %u",
            (unsigned long long)line, unsigned(fmt_.pendingReq(entry)));

    // Watchdog: a busy or stale entry is an in-flight home-side
    // transaction; it must resolve within the age bound.
    const std::uint64_t key = dirKey(line);
    if (busy || fmt_.stale(entry)) {
        if (live_.find(key) == live_.end())
            track(key, home, line, busy ? "dirBusy" : "dirStale");
    } else {
        untrack(key);
    }

    if (fullMirror()) {
        auto &m = lines_[line];
        m.dirEntry = entry;
        m.dirSeen = true;
    }
}

void
Checker::onPendWrite(NodeId node, unsigned mshr, std::uint64_t word0)
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    ++pendWrites;
    if (mshr >= 64)
        flag("pending-table write: node %u mshr %u out of range",
            unsigned(node), mshr);
    if (word0 & (1ULL << pend::validShift)) {
        const auto exp = (word0 >> pend::acksExpShift) & 0xffff;
        const auto rcv = (word0 >> pend::acksRcvShift) & 0xffff;
        // Before the data reply arrives acksExp is still zero while
        // early acks may already have bumped acksRcv, so the ordering
        // check only applies once the expectation has been recorded.
        if ((word0 & (1ULL << pend::dataShift)) != 0) {
            if (exp >= params_.nodes)
                flag("pending-table write: node %u mshr %u expects %llu "
                     "acks on a %u-node machine",
                    unsigned(node), mshr, (unsigned long long)exp,
                    params_.nodes);
            if (rcv > exp)
                flag("pending-table write: node %u mshr %u received %llu "
                     "acks but expects only %llu",
                    unsigned(node), mshr, (unsigned long long)rcv,
                    (unsigned long long)exp);
        }
    }
    if (fullMirror())
        pend_[(std::uint32_t(node) << 8) | mshr] = word0;
}

void
Checker::onStarvation(NodeId node, Addr line, unsigned retries)
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    ++starvations;
    if (starved_.size() < maxStarvedRecords)
        starved_.push_back(Starved{tickAt(node), node, line, retries});
}

// ------------------------------------------------------------ lifecycle

void
Checker::verifyQuiescent()
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    for (const auto &[line, m] : lines_) {
        if (popCount(m.writers) > 1)
            flag("quiescence: line %llx has %u writers (mask %llx)",
                (unsigned long long)line, popCount(m.writers),
                (unsigned long long)m.writers);
        if (m.writers != 0 && m.sharers != 0)
            flag("quiescence: line %llx has writer %llx and sharers %llx",
                (unsigned long long)line, (unsigned long long)m.writers,
                (unsigned long long)m.sharers);
        if (!m.dirSeen)
            continue;
        const unsigned st = fmt_.state(m.dirEntry);
        const std::uint64_t vec = fmt_.vector(m.dirEntry);
        if (fmt_.stale(m.dirEntry))
            flag("quiescence: line %llx left with stale flag set",
                (unsigned long long)line);
        if (st > dirExclusive)
            flag("quiescence: line %llx left in busy state %u",
                (unsigned long long)line, st);
        if (m.writers != 0) {
            if (st != dirExclusive)
                flag("quiescence: line %llx cached writable but directory "
                     "state is %u",
                    (unsigned long long)line, st);
            else if (vec != m.writers)
                flag("quiescence: line %llx directory owner %llx != "
                     "actual writer %llx",
                    (unsigned long long)line, (unsigned long long)vec,
                    (unsigned long long)m.writers);
        } else if (m.sharers != 0) {
            if (st != dirShared)
                flag("quiescence: line %llx cached Shared but directory "
                     "state is %u",
                    (unsigned long long)line, st);
            else if (m.sharers & ~vec)
                flag("quiescence: line %llx cached sharers %llx missing "
                     "from vector %llx",
                    (unsigned long long)line,
                    (unsigned long long)m.sharers,
                    (unsigned long long)vec);
        } else if (st == dirExclusive) {
            // An owner never drops its copy silently, so Exclusive with
            // no cached writer means the line was lost.
            flag("quiescence: line %llx directory Exclusive (vector %llx) "
                 "but no cache holds it writable",
                (unsigned long long)line, (unsigned long long)vec);
        }
    }
    for (const auto &[key, word0] : pend_) {
        if (word0 & (1ULL << pend::validShift))
            flag("quiescence: pending-table entry node %u mshr %u still "
                 "valid (word0 %llx)",
                unsigned(key >> 8), unsigned(key & 0xff),
                (unsigned long long)word0);
    }
    if (!live_.empty())
        flag("quiescence: %zu transaction(s) still tracked by the "
             "watchdog",
            live_.size());
}

void
Checker::reportWedge(const char *why)
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    if (wedgeReported_)
        return;
    wedgeReported_ = true;
    std::fprintf(stderr, "==== coherence watchdog: %s ====\n", why);
    dumpReport(stderr);
    if (wedgeSnap_) {
        std::string path = wedgeSnap_();
        if (!path.empty())
            std::fprintf(stderr, "machine snapshot saved to %s\n",
                         path.c_str());
    }
    flag("watchdog: %s (%zu in-flight transaction(s))", why, live_.size());
}

void
Checker::dumpReport(std::FILE *out)
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    const Tick now = eq_->curTick();
    std::fprintf(out, "tick %llu, %zu tracked transaction(s):\n",
        (unsigned long long)now, live_.size());

    std::vector<const Live *> sorted;
    sorted.reserve(live_.size());
    for (const auto &[key, t] : live_)
        sorted.push_back(&t);
    std::sort(sorted.begin(), sorted.end(),
        [](const Live *a, const Live *b) { return a->since < b->since; });
    for (const Live *t : sorted)
        std::fprintf(out, "  [age %llu ticks] node %u line %llx (%s)\n",
            (unsigned long long)(now - t->since), unsigned(t->node),
            (unsigned long long)t->addr, t->kind);

    for (const Probe &p : probes_) {
        std::fprintf(out,
            "  progress probe '%s': counter %llu, %s, idle %llu ticks\n",
            p.name.c_str(), (unsigned long long)p.last,
            p.done && p.done() ? "done" : "live",
            (unsigned long long)(p.seen ? now - p.lastChange : 0));
    }

    if (starvations.value() != 0) {
        std::fprintf(out,
            "-- %llu starvation flag(s) (first %zu shown) --\n",
            (unsigned long long)starvations.value(), starved_.size());
        for (const auto &s : starved_)
            std::fprintf(out,
                "  [tick %llu] node %u line %llx: %u NAK retries\n",
                (unsigned long long)s.when, unsigned(s.node),
                (unsigned long long)s.addr, s.retries);
    }

    for (const auto &[name, fn] : dumpHooks_) {
        std::fprintf(out, "-- %s --\n", name.c_str());
        fn(out);
    }

    std::fprintf(out,
        "-- last %zu handler dispatch event(s), oldest first --\n",
        ring_.stored());
    ring_.dumpTail(out, ring_.capacity());

    if (traceMgr_ != nullptr)
        traceMgr_->dumpTails(out, wedgeTraceTail);
}

void
Checker::violation(const std::string &msg)
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    violations_.push_back(msg);
    if (params_.abortOnViolation)
        SMTP_PANIC("coherence checker: %s", msg.c_str());
    std::fprintf(stderr, "coherence checker (latched): %s\n", msg.c_str());
}

// ------------------------------------------------------------- watchdog

void
Checker::track(std::uint64_t key, NodeId node, Addr addr, const char *kind)
{
    // Callers hold mtx_ (every hook locks before reaching here).
    live_[key] = Live{tickAt(node), node, addr, kind};
    if (barrierArm_) {
        // Shard threads must not touch the constructor queue; request
        // the arm and let onBarrier() (single-threaded) schedule it.
        scanArmRequest_ = true;
        return;
    }
    scheduleScan();
}

void
Checker::untrack(std::uint64_t key)
{
    live_.erase(key);
}

void
Checker::addProgressProbe(std::string name,
                          std::function<std::uint64_t()> counter,
                          std::function<bool()> done)
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    Probe p;
    p.name = std::move(name);
    p.counter = std::move(counter);
    p.done = std::move(done);
    probes_.push_back(std::move(p));
    // Probes age from registration on, independent of tracked
    // transactions: arm the scan now (or at the next barrier).
    if (barrierArm_) {
        scanArmRequest_ = true;
        return;
    }
    scheduleScan();
}

void
Checker::scheduleScan()
{
    if (scanScheduled_ || (live_.empty() && probes_.empty()))
        return;
    scanScheduled_ = true;
    eq_->scheduleIn(params_.watchdogScanInterval, ScanEv{this});
}

void
Checker::onBarrier()
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    if (!scanArmRequest_ || scanScheduled_)
        return;
    scanArmRequest_ = false;
    scanScheduled_ = true;
    eq_->scheduleIn(params_.watchdogScanInterval, ScanEv{this});
}

void
Checker::scan()
{
    std::lock_guard<std::recursive_mutex> lk(mtx_);
    scanScheduled_ = false;
    if (barrierArm_) {
        // Re-arm unconditionally: once started, the scan schedule is a
        // pure function of simulated time, so it perturbs window
        // placement identically at every host-thread count. (The scan
        // event runs on the constructor queue's own shard thread, so
        // scheduling here is race-free.)
        scanScheduled_ = true;
        eq_->scheduleIn(params_.watchdogScanInterval, ScanEv{this});
    }
    if ((live_.empty() && probes_.empty()) || wedgeReported_)
        return;
    const Tick now = eq_->curTick();
    for (const auto &[key, t] : live_) {
        if (now - t.since > params_.watchdogMaxAge) {
            reportWedge("transaction exceeded the watchdog age bound");
            return;
        }
    }
    for (Probe &p : probes_) {
        const std::uint64_t v = p.counter();
        const bool finished = p.done && p.done();
        if (!p.seen || v != p.last || finished) {
            p.seen = true;
            p.last = v;
            p.lastChange = now;
            continue;
        }
        if (now - p.lastChange > params_.watchdogMaxAge) {
            char why[160];
            std::snprintf(why, sizeof(why),
                          "progress probe '%s' stalled at %llu",
                          p.name.c_str(),
                          static_cast<unsigned long long>(v));
            reportWedge(why);
            return;
        }
    }
    if (!barrierArm_)
        scheduleScan();
}

} // namespace smtp::check
