#include "serve/worker.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <csignal>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/proto.hpp"
#include "serve/runner.hpp"

namespace smtp::serve
{

namespace
{

/**
 * Attempt-gated chaos hook: fires when @p envApp names this cell's app
 * and the attempt number is still within @p envTimes (default
 * @p dfltTimes). Reading the gate per-cell in the *child* keeps the
 * daemon's own code path chaos-free — the hooks cost one getenv per
 * dispatch and vanish entirely when the variables are unset.
 */
bool chaosHookFires(const char *envApp, const char *envTimes,
                    unsigned dfltTimes, const std::string &app,
                    unsigned attempt)
{
    const char *want = std::getenv(envApp);
    if (want == nullptr || app != want)
        return false;
    unsigned times = dfltTimes;
    if (const char *t = std::getenv(envTimes))
        times = static_cast<unsigned>(std::strtoul(t, nullptr, 10));
    return attempt <= times;
}

std::string describeExit(int status)
{
    char buf[64];
    if (WIFSIGNALED(status))
        std::snprintf(buf, sizeof buf, "worker killed by signal %d",
                      WTERMSIG(status));
    else if (WIFEXITED(status))
        std::snprintf(buf, sizeof buf, "worker exited with status %d",
                      WEXITSTATUS(status));
    else
        std::snprintf(buf, sizeof buf, "worker wait status %d", status);
    return buf;
}

} // namespace

// ---------------------------------------------------------------------------
// Child side.

[[noreturn]] void workerChildMain(int fd)
{
    // The daemon's signal dispositions (ignored SIGPIPE, stop-flag
    // handlers for SIGINT/SIGTERM) are wrong for a worker: the pool
    // must be able to SIGKILL/SIGTERM it, and a torn pipe should be a
    // write error, not death.
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGPIPE, SIG_IGN);

    std::string payload;
    for (;;)
    {
        std::string err;
        int rc = readFrame(fd, payload, &err);
        if (rc == 0)
            ::_exit(0); // Daemon closed the pipe: clean retirement.
        if (rc < 0)
            ::_exit(1);

        JsonValue req;
        RunConfig cfg;
        std::string perr;
        JsonValue reply = JsonValue::makeObject();
        if (!JsonValue::parse(payload, req, &perr) || !req.isObject() ||
            req.find("cell") == nullptr ||
            !cellFromJson(*req.find("cell"), cfg, &perr))
        {
            reply.set("type", JsonValue::makeString("failed"));
            reply.set("error", JsonValue::makeString(
                                   "bad worker request: " + perr));
            if (!writeFrame(fd, reply.dump()))
                ::_exit(1);
            continue;
        }
        // cellFromJson deliberately drops ckpt_dir and turns real trace
        // stems into the "?" placeholder (clients don't choose daemon
        // paths); the daemon re-attaches its own choices here.
        cfg.ckptDir = req.getString("ckpt_dir");
        std::string stem = req.getString("trace_stem");
        if (!stem.empty())
            cfg.traceStem = stem;
        unsigned attempt =
            static_cast<unsigned>(req.getNumber("attempt", 1.0));

        if (chaosHookFires("SMTPD_CHAOS_ABORT_APP",
                           "SMTPD_CHAOS_ABORT_TIMES", 1, cfg.app,
                           attempt))
        {
            std::fprintf(stderr,
                         "[worker %d] chaos: aborting on app=%s "
                         "attempt=%u\n",
                         static_cast<int>(::getpid()), cfg.app.c_str(),
                         attempt);
            std::abort();
        }
        if (chaosHookFires("SMTPD_CHAOS_WEDGE_APP",
                           "SMTPD_CHAOS_WEDGE_TIMES", 1000000u,
                           cfg.app, attempt))
        {
            std::fprintf(stderr,
                         "[worker %d] chaos: wedging on app=%s "
                         "attempt=%u\n",
                         static_cast<int>(::getpid()), cfg.app.c_str(),
                         attempt);
            for (;;)
                ::pause(); // Until the deadline watchdog SIGKILLs us.
        }

        try
        {
            RunResult r = runOnce(cfg);
            reply.set("type", JsonValue::makeString("done"));
            reply.set("record",
                      JsonValue::makeString(jsonRecord(cfg, r)));
            reply.set("result", resultToJson(r));
        }
        catch (const std::exception &e)
        {
            reply.set("type", JsonValue::makeString("failed"));
            reply.set("error", JsonValue::makeString(e.what()));
        }
        catch (...)
        {
            reply.set("type", JsonValue::makeString("failed"));
            reply.set("error",
                      JsonValue::makeString("unknown exception"));
        }
        if (!writeFrame(fd, reply.dump()))
            ::_exit(1);
    }
}

// ---------------------------------------------------------------------------
// Parent side.

WorkerPool::WorkerPool(unsigned workers, bool verbose,
                       std::function<void()> closeInChild)
    : verbose_(verbose), closeInChild_(std::move(closeInChild))
{
    slots_.resize(workers == 0 ? 1 : workers);
}

WorkerPool::~WorkerPool()
{
    for (Slot &s : slots_)
        retire(s, /*kill=*/true);
}

bool WorkerPool::spawn(Slot &slot, std::string *err)
{
    int sp[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0)
    {
        if (err != nullptr)
            *err = std::string("socketpair: ") + std::strerror(errno);
        return false;
    }
    pid_t pid = ::fork();
    if (pid < 0)
    {
        if (err != nullptr)
            *err = std::string("fork: ") + std::strerror(errno);
        ::close(sp[0]);
        ::close(sp[1]);
        return false;
    }
    if (pid == 0)
    {
        // Child: drop every daemon fd the serve loop must not hold —
        // the owner's sockets via the callback, then the parent ends
        // of every sibling worker pipe (holding one would keep a
        // crashed sibling's EOF from ever reaching the daemon).
        if (closeInChild_)
            closeInChild_();
        for (const Slot &s : slots_)
            if (s.fd >= 0)
                ::close(s.fd);
        ::close(sp[0]);
        workerChildMain(sp[1]); // noreturn
    }
    ::close(sp[1]);
    ::fcntl(sp[0], F_SETFD, FD_CLOEXEC);
    slot.pid = pid;
    slot.fd = sp[0];
    slot.splitter = FrameSplitter();
    slot.busy = false;
    slot.key = 0;
    slot.attempt = 0;
    if (verbose_)
        std::fprintf(stderr, "smtpd: worker %d spawned\n",
                     static_cast<int>(pid));
    return true;
}

void WorkerPool::retire(Slot &slot, bool kill)
{
    if (slot.pid > 0)
    {
        if (kill)
            ::kill(slot.pid, SIGKILL);
        int status = 0;
        // Reap this specific pid: the embedding process (tests, chaos
        // harness) may own children of its own, so waitpid(-1) would
        // steal them.
        while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR)
        {
        }
        slot.pid = -1;
    }
    if (slot.fd >= 0)
    {
        ::close(slot.fd);
        slot.fd = -1;
    }
    slot.splitter = FrameSplitter();
    slot.busy = false;
    slot.key = 0;
    slot.attempt = 0;
}

bool WorkerPool::start(std::string *err)
{
    for (Slot &s : slots_)
        if (!spawn(s, err))
        {
            for (Slot &t : slots_)
                retire(t, /*kill=*/true);
            return false;
        }
    return true;
}

unsigned WorkerPool::busy() const
{
    unsigned n = 0;
    for (const Slot &s : slots_)
        if (s.busy)
            ++n;
    return n;
}

std::vector<int> WorkerPool::pids() const
{
    std::vector<int> out;
    for (const Slot &s : slots_)
        if (s.pid > 0)
            out.push_back(static_cast<int>(s.pid));
    return out;
}

std::vector<int> WorkerPool::pollFds() const
{
    std::vector<int> out;
    for (const Slot &s : slots_)
        if (s.fd >= 0)
            out.push_back(s.fd);
    return out;
}

bool WorkerPool::dispatch(std::uint64_t key, unsigned attempt,
                          const std::string &requestJson,
                          std::chrono::steady_clock::time_point deadline)
{
    for (Slot &s : slots_)
    {
        if (s.fd < 0 || s.busy)
            continue;
        std::string werr;
        if (!writeFrame(s.fd, requestJson, &werr))
        {
            // An idle worker with a full or broken pipe is dead in all
            // but name; recycle it and try the next slot. Its demise
            // is bookkept like a crash, but no cell was lost.
            if (verbose_)
                std::fprintf(stderr,
                             "smtpd: worker %d dispatch failed (%s), "
                             "respawning\n",
                             static_cast<int>(s.pid), werr.c_str());
            retire(s, /*kill=*/true);
            ++reaped_;
            spawn(s, nullptr);
            continue;
        }
        s.busy = true;
        s.key = key;
        s.attempt = attempt;
        s.deadline = deadline;
        return true;
    }
    return false;
}

void WorkerPool::readSlot(Slot &slot, std::vector<WorkerEvent> &events)
{
    char buf[16384];
    for (;;)
    {
        ssize_t n = ::recv(slot.fd, buf, sizeof buf, MSG_DONTWAIT);
        if (n > 0)
        {
            slot.splitter.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        // EOF or hard error: the worker died. If it owed us a cell,
        // that's a crash event; either way reap and respawn.
        int status = 0;
        pid_t pid = slot.pid;
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR)
        {
        }
        slot.pid = -1;
        if (slot.busy)
        {
            WorkerEvent ev;
            ev.kind = WorkerEvent::Kind::Crashed;
            ev.key = slot.key;
            ev.attempt = slot.attempt;
            ev.error = describeExit(status);
            events.push_back(ev);
        }
        if (verbose_)
            std::fprintf(stderr, "smtpd: worker %d died (%s)\n",
                         static_cast<int>(pid),
                         describeExit(status).c_str());
        retire(slot, /*kill=*/false);
        ++reaped_;
        spawn(slot, nullptr);
        return;
    }

    std::string payload;
    while (slot.splitter.next(payload))
    {
        JsonValue v;
        std::string perr;
        WorkerEvent ev;
        ev.key = slot.key;
        ev.attempt = slot.attempt;
        if (JsonValue::parse(payload, v, &perr) &&
            v.getString("type") == "done")
        {
            ev.kind = WorkerEvent::Kind::Done;
            ev.record = v.getString("record");
            ev.resultJson =
                v.find("result") != nullptr ? v.find("result")->dump()
                                            : std::string();
        }
        else
        {
            ev.kind = WorkerEvent::Kind::Failed;
            ev.error = perr.empty() ? v.getString("error", "run failed")
                                    : "bad worker reply: " + perr;
        }
        slot.busy = false;
        slot.key = 0;
        slot.attempt = 0;
        events.push_back(ev);
    }
    if (!slot.splitter.error().empty())
    {
        // A worker that frames garbage at us is as dead as one that
        // crashed (this cannot happen short of memory corruption, in
        // which case killing it is exactly right).
        if (slot.busy)
        {
            WorkerEvent ev;
            ev.kind = WorkerEvent::Kind::Crashed;
            ev.key = slot.key;
            ev.attempt = slot.attempt;
            ev.error = "worker framing error: " + slot.splitter.error();
            events.push_back(ev);
        }
        retire(slot, /*kill=*/true);
        ++reaped_;
        spawn(slot, nullptr);
    }
}

void WorkerPool::service(std::vector<WorkerEvent> &events)
{
    auto now = std::chrono::steady_clock::now();
    for (Slot &s : slots_)
    {
        if (s.fd < 0)
        {
            // A slot whose respawn failed earlier (fork pressure):
            // keep trying, the pool heals itself.
            spawn(s, nullptr);
            continue;
        }
        if (s.busy &&
            s.deadline != std::chrono::steady_clock::time_point::max() &&
            now >= s.deadline)
        {
            WorkerEvent ev;
            ev.kind = WorkerEvent::Kind::DeadlineKilled;
            ev.key = s.key;
            ev.attempt = s.attempt;
            ev.error = "deadline exceeded";
            events.push_back(ev);
            if (verbose_)
                std::fprintf(stderr,
                             "smtpd: worker %d overran its deadline, "
                             "killing\n",
                             static_cast<int>(s.pid));
            retire(s, /*kill=*/true);
            ++reaped_;
            spawn(s, nullptr);
            continue;
        }
        readSlot(s, events);
    }
}

bool WorkerPool::killCell(std::uint64_t key)
{
    for (Slot &s : slots_)
    {
        if (s.fd < 0 || !s.busy || s.key != key)
            continue;
        retire(s, /*kill=*/true);
        ++reaped_;
        spawn(s, nullptr);
        return true;
    }
    return false;
}

int WorkerPool::nextDeadlineMs(
    std::chrono::steady_clock::time_point now) const
{
    auto earliest = std::chrono::steady_clock::time_point::max();
    for (const Slot &s : slots_)
        if (s.busy && s.deadline < earliest)
            earliest = s.deadline;
    if (earliest == std::chrono::steady_clock::time_point::max())
        return -1;
    if (earliest <= now)
        return 0;
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  earliest - now)
                  .count() +
              1;
    return ms > 60000 ? 60000 : static_cast<int>(ms);
}

} // namespace smtp::serve
