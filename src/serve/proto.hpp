/**
 * @file
 * smtpd message vocabulary: converting sweep cells (serve::RunConfig)
 * to and from the JSON carried in wire frames.
 *
 * The reader is strict — every unknown member of a cell object is a
 * hard error, not a warning. A misspelled "scael" that silently fell
 * back to a default would produce a *valid-looking* record for the
 * wrong experiment, which is the worst failure mode a results daemon
 * can have. cellToJson()/cellFromJson() round-trip exactly, so a
 * client-side RunConfig and the daemon-side one it becomes have equal
 * cellKey() — the dedup identity survives the wire.
 *
 * One RunConfig field never crosses the wire meaningfully: ckptDir.
 * The daemon owns a single checkpoint farm for all clients (that
 * sharing is the point of the service); a client-sent "ckpt_dir" is
 * accepted for CLI symmetry and ignored, documented in docs/service.md.
 */

#ifndef SMTP_SERVE_PROTO_HPP
#define SMTP_SERVE_PROTO_HPP

#include <string>

#include "serve/json.hpp"
#include "serve/runner.hpp"

namespace smtp::serve
{

/** Serialize one sweep cell for a submit request. */
JsonValue cellToJson(const RunConfig &cfg);

/**
 * Structured form of a RunResult for a "cell" reply frame. Numbers are
 * re-serialized with %.17g (JsonValue::dump), which round-trips every
 * double exactly — the structured fields agree bit-for-bit with the
 * verbatim record that travels alongside them.
 */
JsonValue resultToJson(const RunResult &r);

/** Inverse of resultToJson (tolerant: absent members keep defaults). */
RunResult resultFromJson(const JsonValue &v);

/**
 * Parse one cell object. False with *err on any unknown member, wrong
 * type, or unparsable spec string (exec/check/sample/faults/retry).
 * @p out is default-initialized first, so omitted members get the
 * RunConfig defaults.
 */
bool cellFromJson(const JsonValue &cell, RunConfig &out,
                  std::string *err = nullptr);

/**
 * The structured error record for a quarantined (or shed) cell: the
 * JSON-Lines line a waiter receives in place of jsonRecord() output.
 * It names the cell (app/model/sizes) so a results file that mixes
 * successes and failures stays self-describing, carries
 * "failed":true so no tooling can mistake it for metrics, and records
 * why ("error": crash/deadline/error/shed, plus detail) and how hard
 * the daemon tried ("attempts").
 */
std::string jsonFailureRecord(const RunConfig &cfg,
                              const std::string &reason,
                              const std::string &detail,
                              unsigned attempts);

/** 16-hex-digit lower-case form used for ids and cell keys on the wire. */
std::string hex64(std::uint64_t v);

/** Parse hex64 output (also accepts shorter hex strings). */
bool parseHex64(const std::string &s, std::uint64_t &out);

} // namespace smtp::serve

#endif // SMTP_SERVE_PROTO_HPP
