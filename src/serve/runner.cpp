#include "serve/runner.hpp"

#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "check/checker.hpp"
#include "snap/ckpt_cache.hpp"
#include "trace/trace.hpp"
#include "workload/app.hpp"

namespace smtp::serve
{

bool
SampleSpec::parse(const std::string &spec, SampleSpec &out,
                  std::string *err)
{
    unsigned long long w = 0, m = 0, k = 0;
    char trailing = 0;
    int n = std::sscanf(spec.c_str(), "%llu:%llu:%llu%c", &w, &m, &k,
                        &trailing);
    if (n != 3 || m == 0 || k == 0) {
        if (err != nullptr)
            *err = "expected W:M:K (cycles:cycles:count, M and K > 0), "
                   "got '" +
                   spec + "'";
        return false;
    }
    out.warmup = w;
    out.interval = m;
    out.count = static_cast<unsigned>(k);
    return true;
}

namespace
{

/**
 * One sweep cell's simulation state: machine + functional memory +
 * workload, wired together. Rebuildable, because a failed snapshot
 * restore may leave the machine partially mutated — the fallback path
 * constructs a fresh cell and simulates from tick zero.
 */
struct CellSim
{
    MachineParams mp;
    std::unique_ptr<FuncMem> mem;
    std::unique_ptr<Machine> machine;
    std::unique_ptr<workload::App> app;
    unsigned totalThreads = 0;

    void
    build(const RunConfig &cfg)
    {
        machine.reset();
        mem = std::make_unique<FuncMem>();
        machine = std::make_unique<Machine>(mp);
        app = workload::makeApp(cfg.app);
        workload::WorkloadEnv env;
        env.mem = mem.get();
        env.map = &machine->addressMap();
        env.nodes = cfg.nodes;
        env.threadsPerNode = cfg.ways;
        env.scale = cfg.scale;
        app->build(env);
        totalThreads = env.totalThreads();
        for (unsigned t = 0; t < totalThreads; ++t)
            machine->setGlobalSource(t, app->thread(t));
        machine->setWorkloadState(app.get());
        // Server workloads: request/txn telemetry buffers (no-op for
        // the scientific apps and for untraced machines — the factory
        // returns nullptr when the category is masked, keeping other
        // exports byte-identical) and a watchdog progress probe so a
        // wedged-but-cache-quiet workload still trips the checker.
        if (auto *tm = machine->traceManager()) {
            app->attachTrace([tm](NodeId node) {
                return tm->createBuffer("wl", node,
                                        trace::Category::Workload);
            });
        }
        const workload::ServerStats *stats = app->serverStats();
        if (machine->checker() != nullptr && stats != nullptr) {
            machine->checker()->addProgressProbe(
                std::string(app->name()),
                [stats] {
                    return stats->requests + stats->txnCommits +
                           stats->txnAborts;
                },
                [stats] { return stats->done(); });
        }
    }
};

/**
 * Checkpoint-library identity: the machine config hash mixed with
 * everything that shapes *simulated state* but lives outside
 * MachineParams — the workload, and whether telemetry rides along (a
 * traced snapshot carries a trace section an untraced machine must not
 * be handed, and vice versa). Deliberately narrower than cellKey():
 * sample runs with different interval counts share one warmup
 * snapshot (the tag carries the warmup length), and checker level
 * never reaches the library (checked cells bypass it).
 */
std::uint64_t
snapKey(const RunConfig &cfg)
{
    snap::Hasher h;
    h.mix(machineConfigHash(paramsFor(cfg)));
    h.mix("workload");
    h.mix(cfg.app);
    h.mixF(cfg.scale);
    h.mix(static_cast<std::uint64_t>(cfg.traceStem.empty() ? 0 : 1));
    // Exec-traced snapshots carry per-shard exec buffers a plainly
    // traced machine would refuse, so they get their own cache cells.
    h.mix(static_cast<std::uint64_t>(cfg.traceExec ? 1 : 0));
    return h.value();
}

/** Two-sided 95% Student's t critical value for @p df degrees. */
double
tCrit95(unsigned df)
{
    static const double kTable[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (df == 0)
        return 0.0;
    if (df <= 30)
        return kTable[df - 1];
    return 1.96;
}

/** Sample mean and 95% CI half-width (0 when n < 2). */
void
meanCi95(const std::vector<double> &xs, double &mean, double &ci)
{
    mean = 0.0;
    ci = 0.0;
    if (xs.empty())
        return;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());
    if (xs.size() < 2)
        return;
    double ss = 0.0;
    for (double x : xs)
        ss += (x - mean) * (x - mean);
    double var = ss / static_cast<double>(xs.size() - 1);
    ci = tCrit95(static_cast<unsigned>(xs.size() - 1)) *
         std::sqrt(var / static_cast<double>(xs.size()));
}

/**
 * Read every derived metric off the machine's current state. Works
 * identically on a machine that just simulated and on one that just
 * restored a snapshot — that equivalence is what makes checkpoint
 * hits indistinguishable in the JSON output.
 */
void
extractMetrics(Machine &machine, const RunConfig &cfg, RunResult &out,
               bool quiesce_faults)
{
    out.execTime = machine.execTime();
    out.committedInsts = machine.committedAppInsts();
    out.memStallFraction = machine.memStallFraction();
    out.peakProtocolOccupancy = machine.peakProtocolOccupancy();
    out.execSerialized = machine.execSerializedByChecker();
    if (cfg.model == MachineModel::SMTp) {
        auto pc = machine.protoCharacteristics();
        out.protoBranchMispredict = pc.branchMispredictRate;
        out.protoSquashCyclePct = pc.squashCyclePct;
        out.protoRetiredPct = pc.retiredInstPct;
        for (unsigned n = 0; n < cfg.nodes; ++n) {
            const auto &occ = machine.node(n).cpu->protoOccupancy;
            out.peakBranchStack =
                std::max(out.peakBranchStack, occ.branchStack.peak());
            out.peakIntRegs =
                std::max(out.peakIntRegs, occ.intRegs.peak());
            out.peakIntQueue =
                std::max(out.peakIntQueue, occ.intQueue.peak());
            out.peakLsq = std::max(out.peakLsq, occ.lsq.peak());
        }
    }
    // Variant statistics are extracted for EVERY protocol (the JSON
    // fields they feed stay conditional on a non-default protocol, so
    // default records keep their bytes): protocol_compare diffs the
    // bitvector baseline against the variants through these fields.
    {
        auto mig = machine.migratoryCounters();
        out.migDetected = mig.detected;
        out.migSaved = mig.saved;
        out.migReverts = mig.reverts;
        Distribution delay;
        for (unsigned n = 0; n < cfg.nodes; ++n) {
            const auto &mc = *machine.node(n).mc;
            out.naks += mc.naksSent.value();
            out.invalsSent += mc.invalsSent.value();
            out.phaseFloorTrips += mc.phaseFloorTrips.value();
            if (n == 0)
                delay = mc.reqQueueDelay;
            else
                delay.merge(mc.reqQueueDelay);
        }
        out.reqQueueDelayMeanNs =
            delay.mean() / static_cast<double>(tickPerNs);
        out.reqQueueDelayP95Ns =
            delay.percentile(95.0) / static_cast<double>(tickPerNs);
    }
    if (!cfg.traceStem.empty()) {
        std::string err;
        if (!machine.writeTraceFiles(cfg.traceStem, &err))
            std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
    }
    if (const auto *fi = machine.faultInjector(); fi != nullptr) {
        // Faulty cells must still drain cleanly: every injected fault
        // is recoverable, so residual traffic is a harness bug. A
        // restored machine was quiesced before its snapshot was saved.
        if (quiesce_faults)
            machine.quiesce();
        out.faultsInjected = fi->injectedTotal();
        out.faultsRecovered = fi->recoveredTotal();
    }
}

/**
 * Publish the server-family statistics into the record. Works equally
 * after a cold simulation, a checkpoint restore (the resume-log replay
 * recomputed them) or a sampled run; no-op for the scientific apps.
 */
void
extractServerStats(const workload::App &app, RunResult &out)
{
    const workload::ServerStats *st = app.serverStats();
    if (st == nullptr)
        return;
    out.server = true;
    out.requests = st->requests;
    out.txnCommits = st->txnCommits;
    out.txnAborts = st->txnAborts;
    out.txnFallbacks = st->txnFallbacks;
    out.reqLatMeanUs =
        st->reqLatency.mean() / static_cast<double>(tickPerUs);
    out.reqLatP50Us =
        st->reqLatency.percentile(50.0) / static_cast<double>(tickPerUs);
    out.reqLatP95Us =
        st->reqLatency.percentile(95.0) / static_cast<double>(tickPerUs);
    out.reqLatP99Us =
        st->reqLatency.percentile(99.0) / static_cast<double>(tickPerUs);
}

void
saveCheckpoint(Machine &machine, snap::CheckpointLibrary &lib,
               std::uint64_t key, std::string_view tag)
{
    std::string err;
    if (!machine.save(lib.pathFor(key, tag), &err))
        std::fprintf(stderr, "checkpoint save failed: %s\n", err.c_str());
}

/**
 * Restore @p sim from the library snapshot (key, tag). On any failure
 * — config-hash mismatch from a stale library, truncation, version
 * skew — the cell is rebuilt from scratch and the caller simulates
 * cold; a bad snapshot can cost time, never correctness.
 */
bool
tryRestore(CellSim &sim, const RunConfig &cfg,
           snap::CheckpointLibrary &lib, std::uint64_t key,
           std::string_view tag)
{
    std::string err;
    if (sim.machine->restore(lib.pathFor(key, tag), &err))
        return true;
    std::fprintf(stderr,
                 "checkpoint restore failed (%s); re-simulating: %s\n",
                 lib.pathFor(key, tag).c_str(), err.c_str());
    sim.build(cfg);
    return false;
}

/**
 * Sampled measurement: warm up W cycles (restoring a shared warmup
 * snapshot when the library has one), then measure K intervals of M
 * cycles, reporting per-interval machine IPC and memory-stall fraction
 * as mean +/- 95% CI. Ends early if the workload completes.
 */
void
runSampled(CellSim &sim, const RunConfig &cfg,
           snap::CheckpointLibrary *lib, RunResult &out)
{
    const SampleSpec &sp = cfg.sample;
    out.sampled = true;
    ClockDomain clk(cfg.cpuFreqMHz);
    Tick warm_ticks = clk.cyclesToTicks(sp.warmup);
    bool done = false;
    if (lib != nullptr && sp.warmup > 0) {
        std::uint64_t key = snapKey(cfg);
        char tag[32];
        std::snprintf(tag, sizeof(tag), "w%llu",
                      static_cast<unsigned long long>(sp.warmup));
        if (lib->lookup(key, tag) && tryRestore(sim, cfg, *lib, key, tag)) {
            out.ckpt = 1;
        } else {
            out.ckpt = 0;
            done = sim.machine->runUntil(warm_ticks);
            // A workload that finished inside the warmup left an end
            // state, not a warm state; publishing it would make warm
            // reruns diverge from cold ones (extra sample intervals
            // against a finished machine), so the cell stays a miss.
            if (!done)
                saveCheckpoint(*sim.machine, *lib, key, tag);
        }
    } else if (warm_ticks > 0) {
        done = sim.machine->runUntil(warm_ticks);
    }

    Machine &m = *sim.machine;
    auto stall_sum = [&] {
        std::uint64_t s = 0;
        for (unsigned n = 0; n < cfg.nodes; ++n)
            for (unsigned t = 0; t < cfg.ways; ++t)
                s += m.node(n)
                         .cpu->threadStats(static_cast<ThreadId>(t))
                         .memStallCycles.value();
        return s;
    };
    Tick interval_ticks = clk.cyclesToTicks(sp.interval);
    Tick base = m.eventQueue().curTick();
    Tick prev_tick = base;
    std::uint64_t prev_insts = m.committedAppInsts();
    std::uint64_t prev_stall = stall_sum();
    std::vector<double> ipc, stall;
    for (unsigned k = 0; k < sp.count && !done; ++k) {
        done = m.runUntil(base + (k + 1) * interval_ticks);
        Tick now = m.eventQueue().curTick();
        double cycles = static_cast<double>(now - prev_tick) /
                        static_cast<double>(clk.period());
        if (cycles <= 0.0)
            break;
        std::uint64_t insts = m.committedAppInsts();
        std::uint64_t st = stall_sum();
        ipc.push_back(static_cast<double>(insts - prev_insts) / cycles);
        stall.push_back(static_cast<double>(st - prev_stall) /
                        (cycles * sim.totalThreads));
        prev_tick = now;
        prev_insts = insts;
        prev_stall = st;
    }
    out.sampleCount = static_cast<unsigned>(ipc.size());
    meanCi95(ipc, out.ipcMean, out.ipcCi95);
    meanCi95(stall, out.memStallMean, out.memStallCi95);
    // Cumulative metrics reflect the run so far (warmup + intervals);
    // quiesce only when the workload actually finished — draining a
    // mid-flight machine would perturb nothing we report but is wasted
    // work and not what a sampled cell means.
    extractMetrics(m, cfg, out, /*quiesce_faults=*/done);
}

} // namespace

const char *
checkLevelName(check::CheckLevel lv)
{
    switch (lv) {
      case check::CheckLevel::Off: return "off";
      case check::CheckLevel::Asserts: return "asserts";
      case check::CheckLevel::FullMirror: return "full";
    }
    return "?";
}

bool
parseCheckLevel(const std::string &s, check::CheckLevel &out,
                std::string *err)
{
    if (s == "off")
        out = check::CheckLevel::Off;
    else if (s == "asserts")
        out = check::CheckLevel::Asserts;
    else if (s == "full")
        out = check::CheckLevel::FullMirror;
    else {
        if (err != nullptr)
            *err = "expected off|asserts|full, got '" + s + "'";
        return false;
    }
    return true;
}

MachineParams
paramsFor(const RunConfig &cfg)
{
    MachineParams mp;
    mp.model = cfg.model;
    mp.protocol = cfg.protocol;
    mp.nodes = cfg.nodes;
    mp.appThreadsPerNode = cfg.ways;
    mp.cpuFreqMHz = cfg.cpuFreqMHz;
    mp.lookAheadScheduling = cfg.lookAheadScheduling;
    mp.bitAssistOps = cfg.bitAssistOps;
    mp.perfectProtocolCaches = cfg.perfectProtocolCaches;
    mp.dirCacheDivisor = cfg.dirCacheDivisor;
    mp.eventKernel = cfg.heapEventKernel ? EventQueue::Kernel::Heap
                                         : EventQueue::Kernel::Wheel;
    mp.exec = cfg.exec;
    mp.checkLevel = cfg.checkLevel;
    mp.trace.enabled = !cfg.traceStem.empty();
    if (cfg.traceExec)
        mp.trace.categories |= trace::categoryBit(trace::Category::Exec);
    mp.faults = cfg.faults;
    mp.retryPolicy = cfg.retryPolicy;
    return mp;
}

std::uint64_t
cellKey(const RunConfig &cfg)
{
    // Record identity = snapshot identity plus everything else that
    // shapes jsonRecord() bytes: checker level (the "check" field and
    // the serialized-fallback flag), exec mode (the "exec" field), and
    // the sample spec (the sampled-statistics fields).
    snap::Hasher h;
    h.mix(snapKey(cfg));
    h.mix(static_cast<std::uint64_t>(cfg.checkLevel));
    h.mix(cfg.exec.toString());
    h.mix(static_cast<std::uint64_t>(cfg.sample.warmup));
    h.mix(static_cast<std::uint64_t>(cfg.sample.interval));
    h.mix(static_cast<std::uint64_t>(cfg.sample.count));
    return h.value();
}

RunResult
runOnce(const RunConfig &cfg)
{
    auto wall_start = std::chrono::steady_clock::now();

    CellSim sim;
    sim.mp = paramsFor(cfg);
    sim.build(cfg);

    // Checked cells bypass the checkpoint library wholesale: restore
    // requires checkLevel Off (mirror state is not serialized), and a
    // checked cell's purpose is to observe every transition itself.
    std::unique_ptr<snap::CheckpointLibrary> lib;
    if (!cfg.ckptDir.empty() &&
        cfg.checkLevel == check::CheckLevel::Off) {
        lib = std::make_unique<snap::CheckpointLibrary>(cfg.ckptDir);
        if (!lib->valid()) {
            std::fprintf(stderr, "%s\n", lib->error().c_str());
            lib.reset();
        }
    }

    RunResult out;
    if (cfg.sample.active()) {
        runSampled(sim, cfg, lib.get(), out);
    } else if (lib != nullptr) {
        std::uint64_t key = snapKey(cfg);
        if (lib->lookup(key, "full") &&
            tryRestore(sim, cfg, *lib, key, "full")) {
            out.ckpt = 1;
            extractMetrics(*sim.machine, cfg, out,
                           /*quiesce_faults=*/false);
        } else {
            out.ckpt = 0;
            sim.machine->run();
            extractMetrics(*sim.machine, cfg, out,
                           /*quiesce_faults=*/true);
            saveCheckpoint(*sim.machine, *lib, key, "full");
        }
    } else {
        sim.machine->run();
        extractMetrics(*sim.machine, cfg, out, /*quiesce_faults=*/true);
        // A checked cell drains to a quiet point so the checker can
        // age out residual transactions — and, at FullMirror level,
        // cross-check its mirrors (Machine::quiesce calls
        // verifyQuiescent). After extractMetrics: quiescing first
        // would perturb cumulative metrics vs. an unchecked run.
        if (cfg.checkLevel != check::CheckLevel::Off)
            sim.machine->quiesce();
    }
    extractServerStats(*sim.app, out);
    out.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
    return out;
}

std::string
jsonRecord(const RunConfig &c, const RunResult &r)
{
    // Fault fields are appended only for faulty cells so fault-free
    // records stay byte-identical to pre-fault-subsystem output.
    std::string fault_fields;
    if (c.faults.enabled() || c.faults.injectDropWithoutRetransmit) {
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            ",\"fault_seed\":%llu,\"faults\":\"%s\",\"retry\":\"%s\","
            "\"faults_injected\":%llu,\"faults_recovered\":%llu",
            static_cast<unsigned long long>(c.faults.seed),
            c.faults.toString().c_str(),
            fault::retryPolicyToString(c.retryPolicy).c_str(),
            static_cast<unsigned long long>(r.faultsInjected),
            static_cast<unsigned long long>(r.faultsRecovered));
        fault_fields = buf;
    }
    // Protocol-variant fields appear only for non-default protocols,
    // so every bitvector record (the entire pre-variant corpus,
    // including the golden sweep JSONs) stays byte-identical.
    std::string protocol_fields;
    if (c.protocol != proto::ProtocolKind::Bitvector) {
        char buf[384];
        std::snprintf(
            buf, sizeof(buf),
            ",\"protocol\":\"%s\",\"mig_detected\":%llu,"
            "\"mig_upgrades_saved\":%llu,\"mig_reverts\":%llu,"
            "\"naks\":%llu,\"invals\":%llu,\"floor_trips\":%llu,"
            "\"req_qdelay_mean_ns\":%.3f,\"req_qdelay_p95_ns\":%.3f",
            std::string(proto::protocolName(c.protocol)).c_str(),
            static_cast<unsigned long long>(r.migDetected),
            static_cast<unsigned long long>(r.migSaved),
            static_cast<unsigned long long>(r.migReverts),
            static_cast<unsigned long long>(r.naks),
            static_cast<unsigned long long>(r.invalsSent),
            static_cast<unsigned long long>(r.phaseFloorTrips),
            r.reqQueueDelayMeanNs, r.reqQueueDelayP95Ns);
        protocol_fields = buf;
    }
    // Server-workload fields appear only for the server family, so
    // the six paper apps' records stay byte-identical to earlier
    // output. All values are pure functions of simulated state:
    // serial and parallel:T runs must produce the same bytes.
    std::string server_fields;
    if (r.server) {
        char buf[320];
        std::snprintf(
            buf, sizeof(buf),
            ",\"requests\":%llu,\"req_lat_mean_us\":%.3f,"
            "\"req_lat_p50_us\":%.3f,\"req_lat_p95_us\":%.3f,"
            "\"req_lat_p99_us\":%.3f,\"txn_commits\":%llu,"
            "\"txn_aborts\":%llu,\"txn_fallbacks\":%llu",
            static_cast<unsigned long long>(r.requests), r.reqLatMeanUs,
            r.reqLatP50Us, r.reqLatP95Us, r.reqLatP99Us,
            static_cast<unsigned long long>(r.txnCommits),
            static_cast<unsigned long long>(r.txnAborts),
            static_cast<unsigned long long>(r.txnFallbacks));
        server_fields = buf;
    }
    // Sampled-measurement fields appear only in --sample runs, so
    // full-run records stay byte-identical to earlier output.
    std::string sample_fields;
    if (r.sampled) {
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            ",\"samples\":%u,\"ipc_mean\":%.6f,\"ipc_ci95\":%.6f,"
            "\"memstall_mean\":%.6f,\"memstall_ci95\":%.6f",
            r.sampleCount, r.ipcMean, r.ipcCi95, r.memStallMean,
            r.memStallCi95);
        sample_fields = buf;
    }
    // The exec field is ALWAYS present ("serial" included) so ingest —
    // diff scripts, the daemon's dedup — never special-cases its
    // absence. A full-mirror run that overrode a parallel request
    // additionally says so: the record must never read as parallel
    // when one host thread did the work.
    std::string exec_field = ",\"exec\":\"" + c.exec.toString() + "\"";
    if (r.execSerialized)
        exec_field += ",\"exec_serialized\":true";
    if (c.checkLevel != check::CheckLevel::Off) {
        exec_field += ",\"check\":\"";
        exec_field += checkLevelName(c.checkLevel);
        exec_field += "\"";
    }
    char line[2048];
    std::snprintf(
        line, sizeof(line),
        "{\"app\":\"%s\",\"model\":\"%s\",\"nodes\":%u,\"ways\":%u,"
        "\"exec_ticks\":%llu,\"mem_stall\":%.6f%s%s%s%s%s,"
        "\"wall_ms\":%.3f}",
        c.app.c_str(), std::string(modelName(c.model)).c_str(), c.nodes,
        c.ways, static_cast<unsigned long long>(r.execTime),
        r.memStallFraction, protocol_fields.c_str(),
        fault_fields.c_str(), server_fields.c_str(),
        sample_fields.c_str(), exec_field.c_str(), r.wallMs);
    return line;
}

void
appendJsonRecord(std::FILE *f, const RunConfig &cfg, const RunResult &r)
{
    std::fprintf(f, "%s\n", jsonRecord(cfg, r).c_str());
}

} // namespace smtp::serve
