/**
 * @file
 * smtpd wire protocol: framing and socket plumbing.
 *
 * A connection is a UNIX-domain stream socket carrying frames in both
 * directions. One frame = a 4-byte little-endian unsigned length
 * followed by exactly that many bytes of UTF-8 JSON. The length counts
 * the payload only and is capped at kMaxFrame (16 MiB): a prefix
 * beyond the cap is a protocol error and the connection is dropped —
 * the daemon never allocates attacker-chosen sizes. Version lives in
 * the JSON (every reply carries "proto": kProtoVersion), not the
 * framing, so old clients get a readable error instead of a hangup.
 *
 * Everything here is blocking-socket code used by clients and tests;
 * the daemon's poll loop keeps per-connection read buffers and uses
 * FrameSplitter to lift frames out of them incrementally.
 */

#ifndef SMTP_SERVE_WIRE_HPP
#define SMTP_SERVE_WIRE_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace smtp::serve
{

/** Protocol version carried in every reply. */
constexpr unsigned kProtoVersion = 1;

/** Frame payload cap; a larger length prefix is a protocol error. */
constexpr std::uint32_t kMaxFrame = 16u * 1024 * 1024;

/**
 * Encode one frame (length prefix + payload) into a byte string.
 * Callers that keep their own output buffers (the daemon's nonblocking
 * connections) append this and flush on POLLOUT. Payloads over
 * kMaxFrame return an empty string — never a torn frame.
 */
std::string encodeFrame(std::string_view payload);

/**
 * Write one frame (length prefix + payload), retrying short writes and
 * EINTR. False with *err on any socket error, including a peer that
 * disconnected mid-stream (EPIPE is reported via MSG_NOSIGNAL, never
 * raised as SIGPIPE — a vanishing client must not kill the daemon).
 */
bool writeFrame(int fd, std::string_view payload,
                std::string *err = nullptr);

/**
 * Blocking read of one whole frame. Returns 1 on a frame, 0 on clean
 * EOF at a frame boundary, -1 (with *err) on a malformed prefix,
 * mid-frame EOF, or socket error.
 */
int readFrame(int fd, std::string &payload, std::string *err = nullptr);

/**
 * Incremental frame reassembly for a poll loop: feed() raw bytes as
 * they arrive, then next() lifts complete frames out. Oversized
 * length prefixes poison the splitter (error() non-empty, next()
 * false forever) — the owner must drop the connection.
 */
class FrameSplitter
{
  public:
    void feed(const char *data, std::size_t n);
    bool next(std::string &payload);
    const std::string &error() const { return err_; }
    /** Bytes buffered but not yet lifted (diagnostics). */
    std::size_t pendingBytes() const { return buf_.size(); }

  private:
    std::string buf_;
    std::string err_;
};

/**
 * Connect to a daemon socket. Returns the fd, or -1 with *err. The fd
 * has SIGPIPE suppressed per-send (MSG_NOSIGNAL) by writeFrame.
 */
int connectSocket(const std::string &path, std::string *err = nullptr);

/**
 * Bind + listen on a fresh UNIX socket at @p path, unlinking any
 * stale socket file first. Returns the listening fd or -1 with *err.
 */
int listenSocket(const std::string &path, std::string *err = nullptr);

} // namespace smtp::serve

#endif // SMTP_SERVE_WIRE_HPP
