/**
 * @file
 * Blocking client for the smtpd wire protocol, used by smtpctl and by
 * bench_util's --server mode. One Client owns one connection; submit()
 * sends a job and pumps the reply stream until "done", invoking a
 * callback per cell as frames arrive (which is how both front ends
 * stream results to disk incrementally instead of buffering a sweep).
 */

#ifndef SMTP_SERVE_CLIENT_HPP
#define SMTP_SERVE_CLIENT_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/json.hpp"
#include "serve/runner.hpp"

namespace smtp::serve
{

/** One result frame from the daemon's submit stream. */
struct CellReply
{
    std::size_t index = 0;   ///< Position in the submitted cell list.
    std::uint64_t key = 0;   ///< Daemon-side cellKey().
    bool cached = false;     ///< Served without simulating (dedup/disk).
    std::string record;      ///< Verbatim jsonRecord() line — or the
                             ///< structured failure record when failed.
    RunResult result;        ///< Structured twin of record (success only).
    std::string traceStem;   ///< Daemon-side artifact stem, if traced.
    bool failed = false;     ///< Quarantined or shed; no metrics.
    std::string errReason;   ///< failed: crash/deadline/error/shed.
    std::string errDetail;   ///< failed: human-readable specifics.
    unsigned attempts = 0;   ///< failed: how hard the daemon tried.
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to a daemon socket. False with error() set on failure. */
    bool connect(const std::string &socketPath);

    bool connected() const { return fd_ >= 0; }
    const std::string &error() const { return err_; }

    /** Round-trip an op:ping; false on any protocol hiccup. */
    bool ping();

    /** Fetch the daemon's stats object. */
    bool stats(JsonValue &out);

    /** Fetch the daemon's health object (workers, queue, cache). */
    bool health(JsonValue &out);

    /** Ask the daemon to shut down (replies before exiting). */
    bool shutdown();

    /**
     * Submit @p cells as one job and pump the stream until "done".
     * @p onCell fires once per result frame, in completion order (the
     * CellReply carries the submitted index for reordering). Returns
     * false — with error() set — on any protocol or socket failure,
     * and also when the daemon skipped, failed (quarantine/shed), or
     * refused the job outright (admission control; overloaded() is
     * then true and the connection remains usable). The per-outcome
     * counts are reported via outSkipped/outFailed when non-null.
     * @p deadlineMs, when nonzero, asks for a per-cell deadline
     * (simulations past it are killed, retried, and quarantined).
     */
    bool submit(const std::vector<RunConfig> &cells, int priority,
                const std::function<void(const CellReply &)> &onCell,
                std::size_t *outSkipped = nullptr,
                std::size_t *outFailed = nullptr,
                std::uint64_t deadlineMs = 0);

    /** Last submit was refused by admission control (backpressure). */
    bool overloaded() const { return overloaded_; }

    /** Cancel a job by id (as reported in a future async API); rarely
     * useful from this blocking client, but exercised by tests. */
    bool cancel(std::uint64_t jobId, std::size_t *outRemoved = nullptr);

  private:
    bool sendReq(const JsonValue &req);
    /** Read one frame and parse it; rejects "error" frames into err_. */
    bool readReply(JsonValue &out, const char *expectType);

    int fd_ = -1;
    std::string err_;
    bool overloaded_ = false;
};

} // namespace smtp::serve

#endif // SMTP_SERVE_CLIENT_HPP
