/**
 * @file
 * Blocking client for the smtpd wire protocol, used by smtpctl and by
 * bench_util's --server mode. One Client owns one connection; submit()
 * sends a job and pumps the reply stream until "done", invoking a
 * callback per cell as frames arrive (which is how both front ends
 * stream results to disk incrementally instead of buffering a sweep).
 */

#ifndef SMTP_SERVE_CLIENT_HPP
#define SMTP_SERVE_CLIENT_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/json.hpp"
#include "serve/runner.hpp"

namespace smtp::serve
{

/** One result frame from the daemon's submit stream. */
struct CellReply
{
    std::size_t index = 0;   ///< Position in the submitted cell list.
    std::uint64_t key = 0;   ///< Daemon-side cellKey().
    bool cached = false;     ///< Served without simulating (dedup/disk).
    std::string record;      ///< Verbatim jsonRecord() line.
    RunResult result;        ///< Structured twin of record.
    std::string traceStem;   ///< Daemon-side artifact stem, if traced.
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to a daemon socket. False with error() set on failure. */
    bool connect(const std::string &socketPath);

    bool connected() const { return fd_ >= 0; }
    const std::string &error() const { return err_; }

    /** Round-trip an op:ping; false on any protocol hiccup. */
    bool ping();

    /** Fetch the daemon's stats object. */
    bool stats(JsonValue &out);

    /** Ask the daemon to shut down (replies before exiting). */
    bool shutdown();

    /**
     * Submit @p cells as one job and pump the stream until "done".
     * @p onCell fires once per result frame, in completion order (the
     * CellReply carries the submitted index for reordering). Returns
     * false — with error() set — on any protocol or socket failure,
     * including the daemon skipping cells (completed+skipped is
     * reported via outSkipped when non-null).
     */
    bool submit(const std::vector<RunConfig> &cells, int priority,
                const std::function<void(const CellReply &)> &onCell,
                std::size_t *outSkipped = nullptr);

    /** Cancel a job by id (as reported in a future async API); rarely
     * useful from this blocking client, but exercised by tests. */
    bool cancel(std::uint64_t jobId, std::size_t *outRemoved = nullptr);

  private:
    bool sendReq(const JsonValue &req);
    /** Read one frame and parse it; rejects "error" frames into err_. */
    bool readReply(JsonValue &out, const char *expectType);

    int fd_ = -1;
    std::string err_;
};

} // namespace smtp::serve

#endif // SMTP_SERVE_CLIENT_HPP
