/**
 * @file
 * Minimal JSON value model for the smtpd wire protocol — a parser and
 * writer with no dependencies, tuned for hostile input: depth-limited
 * recursion, strict escape validation, no trailing garbage, and every
 * failure is a diagnostic, never UB (the wire tests feed it torn and
 * malformed frames under ASan).
 *
 * Deliberately small: objects are string->Value maps (insertion order
 * preserved for deterministic re-serialization), numbers are doubles
 * (the protocol carries 64-bit identities as hex *strings*, so double
 * precision never truncates an id), and there is no streaming — a
 * frame is parsed whole, which the 16 MiB frame cap bounds.
 */

#ifndef SMTP_SERVE_JSON_HPP
#define SMTP_SERVE_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smtp::serve
{

class JsonValue
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool boolean() const { return bool_; }
    double number() const { return num_; }
    const std::string &str() const { return str_; }
    const std::vector<JsonValue> &array() const { return arr_; }
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return obj_;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    // Typed member accessors with defaults (absent or wrong type =>
    // the default) — the tolerant half of the protocol reader. Use
    // with Server's unknown-field rejection for the strict half.
    std::string getString(std::string_view key,
                          const std::string &dflt = "") const;
    double getNumber(std::string_view key, double dflt = 0.0) const;
    bool getBool(std::string_view key, bool dflt = false) const;

    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double d);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray();
    static JsonValue makeObject();

    void append(JsonValue v); ///< Array element.
    void set(std::string key, JsonValue v); ///< Object member.

    /**
     * Serialize. Numbers use %.17g — the shortest printf format that
     * round-trips every IEEE-754 double through strtod exactly, which
     * is what lets a client re-serialize received metrics without
     * changing a byte.
     */
    std::string dump() const;

    /**
     * Parse @p text as exactly one JSON value (trailing whitespace
     * allowed, trailing garbage rejected). False with *err on any
     * malformed input; @p out is unspecified then.
     */
    static bool parse(std::string_view text, JsonValue &out,
                      std::string *err = nullptr);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

/** JSON string escaping (quotes not included). */
std::string jsonEscape(std::string_view s);

} // namespace smtp::serve

#endif // SMTP_SERVE_JSON_HPP
