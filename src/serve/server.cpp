#include "serve/server.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "serve/proto.hpp"
#include "workload/app.hpp"

namespace smtp::serve
{

namespace
{

bool
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
        return true;
    std::fprintf(stderr, "smtpd: mkdir %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
}

/** makeApp() accepts the canonical name or its all-lowercase form. */
bool
knownApp(const std::string &name)
{
    auto matches = [&](const std::vector<std::string> &names) {
        for (const std::string &n : names) {
            if (name == n)
                return true;
            std::string lower = n;
            for (char &c : lower)
                c = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
            if (name == lower)
                return true;
        }
        return false;
    };
    return matches(workload::appNames()) ||
           matches(workload::serverAppNames());
}

/**
 * FNV-1a over the cached payload. Not cryptographic — it only has to
 * catch disk-level rot (torn writes, bit flips), which the startup
 * fsck then quarantines instead of serving as a valid-looking record
 * for the wrong experiment.
 */
std::uint64_t
contentSum(std::string_view record, std::string_view resultJson)
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&](std::string_view s) {
        for (char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ULL;
        }
    };
    mix(record);
    mix("\n");
    mix(resultJson);
    return h;
}

/** Slow-loris bound: a reader this far behind is shed, not waited on. */
constexpr std::size_t kMaxConnOutbuf = 32u * 1024 * 1024;

} // namespace

fault::RetryPolicyConfig
ServerOptions::defaultRetry()
{
    // Spec grammar is the fault layer's; the serve layer reads the
    // numbers as milliseconds: first retry ~100 ms, doubling to a 5 s
    // cap, plus jitter (see Server::onWorkerEvent).
    fault::RetryPolicyConfig cfg;
    cfg.kind = fault::RetryKind::ExpBackoff;
    cfg.base = 100 * tickPerNs;
    cfg.cap = 5000 * tickPerNs;
    return cfg;
}

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)), rng_(opt_.retrySeed)
{
    if (opt_.maxAttempts == 0)
        opt_.maxAttempts = 1;
}

Server::~Server()
{
    // Pool first: its destructor SIGKILLs and reaps every worker, so
    // no child outlives the daemon's sockets.
    pool_.reset();
    for (auto &[id, conn] : conns_) {
        if (conn.fd >= 0)
            ::close(conn.fd);
    }
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (wakeR_ >= 0)
        ::close(wakeR_);
    if (wakeW_ >= 0)
        ::close(wakeW_);
    if (!opt_.socketPath.empty())
        ::unlink(opt_.socketPath.c_str());
}

void
Server::requestStop()
{
    static_cast<void>(stopReq_.exchange(true));
    char b = 's';
    [[maybe_unused]] ssize_t r = ::write(wakeW_, &b, 1);
}

bool
Server::setup(std::string *err)
{
    if (opt_.socketPath.empty() || opt_.stateDir.empty()) {
        *err = "socket path and state dir are both required";
        return false;
    }
    if (!ensureDir(opt_.stateDir) ||
        !ensureDir(opt_.stateDir + "/ckpt") ||
        !ensureDir(opt_.stateDir + "/results") ||
        !ensureDir(opt_.stateDir + "/traces") ||
        !ensureDir(opt_.stateDir + "/quarantine")) {
        *err = "cannot create state directory layout";
        return false;
    }
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
        *err = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    wakeR_ = pipefd[0];
    wakeW_ = pipefd[1];
    // Non-blocking write end so requestStop() from a signal handler
    // can never wedge; non-blocking read end so draining is a loop.
    ::fcntl(wakeR_, F_SETFL, O_NONBLOCK);
    ::fcntl(wakeW_, F_SETFL, O_NONBLOCK);
    listenFd_ = listenSocket(opt_.socketPath, err);
    if (listenFd_ < 0)
        return false;
    // Non-blocking so acceptClients() can drain the backlog and return.
    ::fcntl(listenFd_, F_SETFL, O_NONBLOCK);
    scanResultCache();
    // Fork workers last: the children must not inherit any daemon fd
    // they could hold open past a crash (a child keeping the listen
    // socket alive would make restart-after-crash fail to bind).
    pool_ = std::make_unique<WorkerPool>(
        opt_.jobs == 0 ? 2 : opt_.jobs, opt_.verbose, [this] {
            if (listenFd_ >= 0)
                ::close(listenFd_);
            if (wakeR_ >= 0)
                ::close(wakeR_);
            if (wakeW_ >= 0)
                ::close(wakeW_);
            for (auto &[id, conn] : conns_) {
                if (conn.fd >= 0)
                    ::close(conn.fd);
            }
        });
    return pool_->start(err);
}

std::string
Server::resultPath(std::uint64_t key) const
{
    return opt_.stateDir + "/results/cell_" + hex64(key) + ".json";
}

void
Server::scanResultCache()
{
    std::string resultsDir = opt_.stateDir + "/results";
    DIR *d = ::opendir(resultsDir.c_str());
    if (d == nullptr)
        return;
    std::vector<std::string> bad;
    while (dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".tmp") == 0) {
            // A write the previous daemon never published; the rename
            // never happened, so nothing references it.
            ::unlink((resultsDir + "/" + name).c_str());
            continue;
        }
        if (name.size() != 5 + 16 + 5 || name.rfind("cell_", 0) != 0 ||
            name.substr(21) != ".json")
            continue;
        std::uint64_t key;
        if (!parseHex64(name.substr(5, 16), key))
            continue;
        // fsck: only files that parse, name their own key, and match
        // their content checksum are trusted for verbatim replay.
        std::string record;
        RunResult result;
        if (loadCachedRecord(key, record, result)) {
            diskIndex_[key] = true;
        } else {
            bad.push_back(name);
        }
    }
    ::closedir(d);
    for (const std::string &name : bad) {
        std::string from = resultsDir + "/" + name;
        std::string to = opt_.stateDir + "/quarantine/" + name;
        if (::rename(from.c_str(), to.c_str()) == 0) {
            ++stats_.fsckQuarantined;
            std::fprintf(stderr,
                         "smtpd: fsck: quarantined corrupt result "
                         "cache file %s\n",
                         name.c_str());
        }
    }
    if (opt_.verbose && !diskIndex_.empty())
        std::fprintf(stderr, "smtpd: rehydrated %zu cached cell(s)\n",
                     diskIndex_.size());
}

bool
Server::loadCachedRecord(std::uint64_t key, std::string &record,
                         RunResult &result)
{
    std::FILE *f = std::fopen(resultPath(key).c_str(), "rb");
    if (f == nullptr)
        return false;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    JsonValue v;
    std::string err;
    if (!JsonValue::parse(text, v, &err) || !v.isObject())
        return false;
    const JsonValue *rec = v.find("record");
    if (rec == nullptr || !rec->isString() || rec->str().empty())
        return false;
    std::uint64_t namedKey = 0;
    if (!parseHex64(v.getString("key"), namedKey) || namedKey != key)
        return false;
    const JsonValue *res = v.find("result");
    if (res == nullptr || !res->isObject())
        return false;
    // parse(dump(x)) is the identity for our own output (insertion
    // order kept, %.17g round-trips), so the checksum can be verified
    // against the re-serialized members.
    std::uint64_t sum = 0;
    if (!parseHex64(v.getString("sum"), sum) ||
        sum != contentSum(rec->str(), res->dump()))
        return false;
    record = rec->str();
    result = resultFromJson(*res);
    return true;
}

void
Server::storeCachedRecord(std::uint64_t key, const std::string &record,
                          const RunResult &result)
{
    JsonValue v = JsonValue::makeObject();
    v.set("key", JsonValue::makeString(hex64(key)));
    v.set("record", JsonValue::makeString(record));
    JsonValue res = resultToJson(result);
    v.set("sum", JsonValue::makeString(
                     hex64(contentSum(record, res.dump()))));
    v.set("result", std::move(res));
    std::string text = v.dump();
    std::string path = resultPath(key);
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return;
    std::fwrite(text.data(), 1, text.size(), f);
    // Crash consistency, not just atomicity: flush to the kernel and
    // then to the device *before* the rename publishes the file, so a
    // power cut can lose the record but never publish a torn one.
    std::fflush(f);
    ::fsync(::fileno(f));
    std::fclose(f);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return;
    }
    int dfd = ::open((opt_.stateDir + "/results").c_str(),
                     O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd); // Best effort; the rename itself was atomic.
        ::close(dfd);
    }
    diskIndex_[key] = true;
}

void
Server::flushConn(Conn &conn)
{
    while (conn.outOff < conn.outbuf.size()) {
        ssize_t w = ::send(conn.fd, conn.outbuf.data() + conn.outOff,
                           conn.outbuf.size() - conn.outOff,
                           MSG_NOSIGNAL);
        if (w >= 0) {
            conn.outOff += static_cast<std::size_t>(w);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break; // poll() will tell us when to resume.
        if (opt_.verbose)
            std::fprintf(stderr, "smtpd: conn %llu write: %s\n",
                         static_cast<unsigned long long>(conn.id),
                         std::strerror(errno));
        conn.dead = true;
        conn.writeFailed = true;
        return;
    }
    if (conn.outOff == conn.outbuf.size()) {
        conn.outbuf.clear();
        conn.outOff = 0;
    } else if (conn.outOff > (1u << 20)) {
        conn.outbuf.erase(0, conn.outOff);
        conn.outOff = 0;
    }
}

bool
Server::sendJson(Conn &conn, const JsonValue &v)
{
    if (conn.dead)
        return false;
    conn.outbuf += encodeFrame(v.dump());
    if (conn.outbuf.size() - conn.outOff > kMaxConnOutbuf) {
        // A reader this far behind (slow-loris or wedged client) is
        // dropped rather than allowed to balloon daemon memory.
        if (opt_.verbose)
            std::fprintf(stderr,
                         "smtpd: conn %llu output buffer overflow, "
                         "dropping\n",
                         static_cast<unsigned long long>(conn.id));
        conn.dead = true;
        conn.writeFailed = true;
        return false;
    }
    flushConn(conn);
    return !conn.dead;
}

void
Server::sendError(Conn &conn, const std::string &msg)
{
    JsonValue v = JsonValue::makeObject();
    v.set("type", JsonValue::makeString("error"));
    v.set("proto", JsonValue::makeNumber(kProtoVersion));
    v.set("message", JsonValue::makeString(msg));
    sendJson(conn, v);
    // A protocol error is not recoverable mid-stream: drop the client
    // rather than guess where its next frame boundary is. dropConn
    // still makes a bounded effort to deliver the frame above.
    conn.dead = true;
}

void
Server::deliverCell(const Cell &cell, const Cell::Waiter &w, bool cached)
{
    auto it = conns_.find(w.conn);
    if (it == conns_.end())
        return;
    JsonValue v = JsonValue::makeObject();
    v.set("type", JsonValue::makeString("cell"));
    v.set("proto", JsonValue::makeNumber(kProtoVersion));
    v.set("job", JsonValue::makeString(hex64(w.job)));
    v.set("index", JsonValue::makeNumber(static_cast<double>(w.index)));
    v.set("key", JsonValue::makeString(hex64(cell.key)));
    v.set("cached", JsonValue::makeBool(cached));
    v.set("record", JsonValue::makeString(cell.record));
    if (cell.failed) {
        v.set("failed", JsonValue::makeBool(true));
        v.set("error", JsonValue::makeString(cell.errReason));
        v.set("detail", JsonValue::makeString(cell.errDetail));
        v.set("attempts", JsonValue::makeNumber(
                              static_cast<double>(cell.attempts)));
    } else {
        v.set("result", resultToJson(cell.result));
    }
    if (!cell.cfg.traceStem.empty() && cell.cfg.traceStem != "?")
        v.set("trace_stem", JsonValue::makeString(cell.cfg.traceStem));
    sendJson(it->second, v);
}

void
Server::finishJobIfDone(std::uint64_t jobId)
{
    auto jt = jobs_.find(jobId);
    if (jt == jobs_.end())
        return;
    Job &job = jt->second;
    if (job.delivered + job.skipped + job.failed < job.cells)
        return;
    auto ct = conns_.find(job.conn);
    if (ct != conns_.end()) {
        JsonValue v = JsonValue::makeObject();
        v.set("type", JsonValue::makeString("done"));
        v.set("proto", JsonValue::makeNumber(kProtoVersion));
        v.set("job", JsonValue::makeString(hex64(job.id)));
        v.set("completed",
              JsonValue::makeNumber(static_cast<double>(job.delivered)));
        v.set("skipped",
              JsonValue::makeNumber(static_cast<double>(job.skipped)));
        v.set("failed",
              JsonValue::makeNumber(static_cast<double>(job.failed)));
        sendJson(ct->second, v);
    }
    jobs_.erase(jt);
}

// ---------------------------------------------------------------------------
// Scheduler.

void
Server::enqueueCell(std::uint64_t key, int priority)
{
    pending_[priority].push_back(key);
}

std::size_t
Server::backlogSize() const
{
    std::size_t n = retryQueue_.size();
    for (const auto &[prio, q] : pending_)
        n += q.size();
    return n;
}

void
Server::dispatchPending()
{
    if (stopping_)
        return;
    while (pool_->idle() > 0) {
        std::uint64_t key = 0;
        bool found = false;
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->second.empty()) {
                it = pending_.erase(it);
                continue;
            }
            key = it->second.front();
            it->second.pop_front();
            found = true;
            break;
        }
        if (!found)
            return;
        auto ct = cells_.find(key);
        if (ct == cells_.end())
            continue;
        Cell &cell = *ct->second;
        if (cell.state != CellState::Queued)
            continue; // Stale queue entry.
        if (cell.abandoned && cell.waiters.empty()) {
            ++stats_.cellsSkipped;
            cells_.erase(ct);
            continue;
        }
        JsonValue req = JsonValue::makeObject();
        req.set("op", JsonValue::makeString("run"));
        req.set("cell", cellToJson(cell.cfg));
        req.set("ckpt_dir", JsonValue::makeString(cell.cfg.ckptDir));
        if (!cell.cfg.traceStem.empty() && cell.cfg.traceStem != "?")
            req.set("trace_stem",
                    JsonValue::makeString(cell.cfg.traceStem));
        req.set("attempt", JsonValue::makeNumber(
                               static_cast<double>(cell.attempts + 1)));
        req.set("key", JsonValue::makeString(hex64(key)));
        auto deadline = std::chrono::steady_clock::time_point::max();
        if (cell.deadlineMs != 0)
            deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(cell.deadlineMs);
        if (!pool_->dispatch(key, cell.attempts + 1, req.dump(),
                             deadline)) {
            // Dispatch can fail transiently while the pool heals from
            // a failed respawn; keep the cell at the head of its class.
            pending_[cell.priority].push_front(key);
            return;
        }
        ++cell.attempts;
        cell.state = CellState::Running;
        if (opt_.verbose)
            std::fprintf(
                stderr,
                "smtpd: cell %s dispatched (%s %s n%u w%u attempt %u)\n",
                hex64(key).c_str(),
                std::string(modelName(cell.cfg.model)).c_str(),
                cell.cfg.app.c_str(), cell.cfg.nodes, cell.cfg.ways,
                cell.attempts);
    }
}

void
Server::promoteDueRetries(std::chrono::steady_clock::time_point now)
{
    while (!retryQueue_.empty() && retryQueue_.begin()->first <= now) {
        std::uint64_t key = retryQueue_.begin()->second;
        retryQueue_.erase(retryQueue_.begin());
        auto ct = cells_.find(key);
        if (ct == cells_.end())
            continue;
        Cell &cell = *ct->second;
        if (cell.state != CellState::RetryWait)
            continue;
        if (cell.abandoned && cell.waiters.empty()) {
            ++stats_.cellsSkipped;
            cells_.erase(ct);
            continue;
        }
        cell.state = CellState::Queued;
        enqueueCell(key, cell.priority);
    }
}

int
Server::nextTimeoutMs() const
{
    auto now = std::chrono::steady_clock::now();
    int timeout = pool_->nextDeadlineMs(now);
    if (!retryQueue_.empty()) {
        auto due = retryQueue_.begin()->first;
        int ms = 0;
        if (due > now)
            ms = static_cast<int>(
                     std::chrono::duration_cast<
                         std::chrono::milliseconds>(due - now)
                         .count()) +
                 1;
        if (timeout < 0 || ms < timeout)
            timeout = ms;
    }
    return timeout;
}

void
Server::quarantineCell(Cell &cell, const std::string &reason,
                       const std::string &detail)
{
    cell.failed = true;
    cell.state = CellState::Done;
    cell.errReason = reason;
    cell.errDetail = detail;
    cell.record =
        jsonFailureRecord(cell.cfg, reason, detail, cell.attempts);
    if (reason == "shed")
        ++stats_.cellsShed;
    else
        ++stats_.cellsQuarantined;
    std::vector<Cell::Waiter> waiters;
    waiters.swap(cell.waiters);
    for (const Cell::Waiter &w : waiters) {
        deliverCell(cell, w, /*cached=*/false);
        auto jt = jobs_.find(w.job);
        if (jt != jobs_.end()) {
            ++jt->second.failed;
            finishJobIfDone(w.job);
        }
    }
    // The failure record is deliberately NOT written to the result
    // cache: a daemon restart gives poison cells a fresh chance
    // (whatever crashed them may have been environmental). Shed cells
    // are forgotten entirely so a resubmission recomputes them.
    if (reason == "shed")
        cells_.erase(cell.key);
}

std::size_t
Server::shedBelow(int below, std::size_t need)
{
    std::size_t shed = 0;
    // Lowest priority class first; within a class, newest first (the
    // oldest queued cell is closest to running and most likely has the
    // most waiters behind it).
    for (auto it = pending_.rbegin();
         it != pending_.rend() && shed < need; ++it) {
        if (it->first >= below)
            break;
        std::deque<std::uint64_t> &q = it->second;
        while (!q.empty() && shed < need) {
            std::uint64_t key = q.back();
            q.pop_back();
            auto ct = cells_.find(key);
            if (ct == cells_.end())
                continue;
            Cell &cell = *ct->second;
            if (cell.state != CellState::Queued)
                continue;
            if (cell.abandoned && cell.waiters.empty()) {
                ++stats_.cellsSkipped;
                cells_.erase(ct);
                ++shed; // Freed a slot either way.
                continue;
            }
            quarantineCell(cell,
                           "shed",
                           "shed by admission control for a "
                           "higher-priority job");
            ++shed;
        }
    }
    return shed;
}

void
Server::onWorkerEvent(const WorkerEvent &ev)
{
    auto ct = cells_.find(ev.key);
    if (ct == cells_.end())
        return; // Cancel-killed and forgotten; nothing to account.
    Cell &cell = *ct->second;
    if (cell.state != CellState::Running || ev.attempt != cell.attempts)
        return; // Stale event from a recycled worker.

    if (ev.kind == WorkerEvent::Kind::Done) {
        cell.record = ev.record;
        JsonValue res;
        std::string err;
        if (JsonValue::parse(ev.resultJson, res, &err))
            cell.result = resultFromJson(res);
        cell.state = CellState::Done;
        ++stats_.cellsSimulated;
        // Checked cells are cacheable too: the record is final either
        // way. Trace cells are cached as records; artifacts stay on
        // disk under traces/ and are referenced by path.
        storeCachedRecord(ev.key, cell.record, cell.result);
        std::vector<Cell::Waiter> waiters;
        waiters.swap(cell.waiters);
        for (const Cell::Waiter &w : waiters) {
            deliverCell(cell, w, /*cached=*/false);
            auto jt = jobs_.find(w.job);
            if (jt != jobs_.end()) {
                ++jt->second.delivered;
                finishJobIfDone(w.job);
            }
        }
        return;
    }

    // A failed attempt: worker crash, deadline kill, or clean error.
    ++stats_.cellsFailed;
    std::string reason;
    switch (ev.kind) {
    case WorkerEvent::Kind::Crashed:
        ++stats_.workersCrashed;
        reason = "crash";
        break;
    case WorkerEvent::Kind::DeadlineKilled:
        ++stats_.workersDeadlineKilled;
        reason = "deadline";
        break;
    default:
        reason = "error";
        break;
    }
    if (opt_.verbose)
        std::fprintf(stderr,
                     "smtpd: cell %s attempt %u failed (%s: %s)\n",
                     hex64(ev.key).c_str(), ev.attempt, reason.c_str(),
                     ev.error.c_str());
    if (cell.abandoned && cell.waiters.empty()) {
        // Nobody is waiting; don't burn retries on unwanted work.
        ++stats_.cellsSkipped;
        cells_.erase(ct);
        return;
    }
    if (cell.attempts >= opt_.maxAttempts || stopping_) {
        quarantineCell(cell, reason, ev.error);
        return;
    }
    ++stats_.cellsRetried;
    cell.state = CellState::RetryWait;
    // RetryPolicy numbers are milliseconds in the serve layer: the
    // parsed config stores base*tickPerNs ticks, so ticks/tickPerNs
    // recovers milliseconds. Jitter comes from the seeded stream.
    std::uint64_t delayMs =
        fault::retryBackoff(opt_.retry, cell.attempts, rng_) / tickPerNs;
    cell.retryDue = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(delayMs);
    retryQueue_.emplace(cell.retryDue, ev.key);
    if (opt_.verbose)
        std::fprintf(stderr, "smtpd: cell %s retry %u in %llu ms\n",
                     hex64(ev.key).c_str(), cell.attempts,
                     static_cast<unsigned long long>(delayMs));
}

// ---------------------------------------------------------------------------
// Request handlers.

void
Server::handleSubmit(Conn &conn, const JsonValue &req)
{
    for (const auto &[key, value] : req.members()) {
        if (key != "op" && key != "proto" && key != "priority" &&
            key != "cells" && key != "deadline_ms") {
            sendError(conn, "unknown request field '" + key + "'");
            return;
        }
    }
    int priority = 0;
    const JsonValue *prio = req.find("priority");
    if (prio != nullptr) {
        if (!prio->isNumber()) {
            sendError(conn, "priority must be a number");
            return;
        }
        priority = static_cast<int>(prio->number());
    }
    std::uint64_t deadlineMs = opt_.deadlineMs;
    const JsonValue *dl = req.find("deadline_ms");
    if (dl != nullptr) {
        if (!dl->isNumber() || dl->number() < 0) {
            sendError(conn, "deadline_ms must be a non-negative number");
            return;
        }
        deadlineMs = static_cast<std::uint64_t>(dl->number());
    }
    const JsonValue *cells = req.find("cells");
    if (cells == nullptr || !cells->isArray() || cells->array().empty()) {
        sendError(conn, "submit requires a non-empty 'cells' array");
        return;
    }
    std::vector<RunConfig> cfgs;
    cfgs.reserve(cells->array().size());
    for (std::size_t i = 0; i < cells->array().size(); ++i) {
        RunConfig cfg;
        std::string err;
        if (!cellFromJson(cells->array()[i], cfg, &err)) {
            sendError(conn, "cell " + std::to_string(i) + ": " + err);
            return;
        }
        if (!knownApp(cfg.app)) {
            sendError(conn, "cell " + std::to_string(i) +
                                ": unknown application '" + cfg.app +
                                "'");
            return;
        }
        // The daemon owns the checkpoint farm; whatever the client had
        // configured locally is irrelevant here.
        cfg.ckptDir = cfg.checkLevel == check::CheckLevel::Off
                          ? opt_.stateDir + "/ckpt"
                          : std::string();
        cfgs.push_back(std::move(cfg));
    }

    // Admission control, before anything is accepted: count the cells
    // that would genuinely join the backlog (not dedup joins, not
    // cache hits). If they don't fit, shed strictly-lower-priority
    // queued work; if they still don't fit, refuse the whole job with
    // explicit backpressure — the client decides what to do, and the
    // connection stays usable.
    std::vector<std::uint64_t> keys(cfgs.size());
    std::size_t newCells = 0;
    {
        std::unordered_map<std::uint64_t, bool> seen;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            keys[i] = cellKey(cfgs[i]);
            if (cells_.count(keys[i]) == 0 &&
                diskIndex_.count(keys[i]) == 0 &&
                seen.emplace(keys[i], true).second)
                ++newCells;
        }
    }
    std::size_t backlog = backlogSize();
    if (backlog + newCells > opt_.maxQueuedCells) {
        std::size_t need = backlog + newCells - opt_.maxQueuedCells;
        shedBelow(priority, need);
        backlog = backlogSize();
        if (backlog + newCells > opt_.maxQueuedCells) {
            ++stats_.jobsRejected;
            JsonValue v = JsonValue::makeObject();
            v.set("type", JsonValue::makeString("overloaded"));
            v.set("proto", JsonValue::makeNumber(kProtoVersion));
            v.set("queued", JsonValue::makeNumber(
                                static_cast<double>(backlog)));
            v.set("limit", JsonValue::makeNumber(static_cast<double>(
                               opt_.maxQueuedCells)));
            sendJson(conn, v);
            return;
        }
    }

    std::uint64_t jobId = nextJobId_++;
    Job job;
    job.id = jobId;
    job.conn = conn.id;
    job.cells = cfgs.size();
    jobs_.emplace(jobId, job);
    ++stats_.jobsAccepted;
    stats_.cellsSubmitted += cfgs.size();

    JsonValue acc = JsonValue::makeObject();
    acc.set("type", JsonValue::makeString("accepted"));
    acc.set("proto", JsonValue::makeNumber(kProtoVersion));
    acc.set("job", JsonValue::makeString(hex64(jobId)));
    acc.set("cells",
            JsonValue::makeNumber(static_cast<double>(cfgs.size())));
    sendJson(conn, acc);

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        RunConfig &cfg = cfgs[i];
        std::uint64_t key = keys[i];
        // The trace stem is daemon-assigned and keyed by the cell, so
        // re-submissions overwrite rather than accumulate artifacts.
        // cellKey() only folds in *whether* tracing is on, never the
        // stem string, so this substitution cannot change the key.
        if (cfg.traceStem == "?")
            cfg.traceStem =
                opt_.stateDir + "/traces/cell_" + hex64(key);

        auto it = cells_.find(key);
        if (it != cells_.end()) {
            Cell &cell = *it->second;
            ++stats_.dedupHits;
            if (cell.state == CellState::Done) {
                deliverCell(cell, Cell::Waiter{conn.id, jobId, i},
                            /*cached=*/true);
                if (cell.failed)
                    ++jobs_[jobId].failed;
                else
                    ++jobs_[jobId].delivered;
            } else {
                cell.abandoned = false;
                cell.waiters.push_back(Cell::Waiter{conn.id, jobId, i});
            }
            continue;
        }

        auto cell = std::make_shared<Cell>();
        cell->key = key;
        cell->cfg = cfg;
        cell->priority = priority;
        cell->deadlineMs = deadlineMs;
        std::string record;
        RunResult cached;
        if (diskIndex_.count(key) != 0 &&
            loadCachedRecord(key, record, cached)) {
            cell->state = CellState::Done;
            cell->fromCache = true;
            cell->record = std::move(record);
            cell->result = cached;
            cells_.emplace(key, cell);
            ++stats_.diskHits;
            deliverCell(*cell, Cell::Waiter{conn.id, jobId, i},
                        /*cached=*/true);
            ++jobs_[jobId].delivered;
            continue;
        }
        cell->waiters.push_back(Cell::Waiter{conn.id, jobId, i});
        cells_.emplace(key, cell);
        enqueueCell(key, priority);
    }
    finishJobIfDone(jobId);
    dispatchPending();
}

void
Server::handleCancel(Conn &conn, const JsonValue &req)
{
    for (const auto &[key, value] : req.members()) {
        if (key != "op" && key != "proto" && key != "job") {
            sendError(conn, "unknown request field '" + key + "'");
            return;
        }
    }
    std::uint64_t jobId;
    const JsonValue *job = req.find("job");
    if (job == nullptr || !job->isString() ||
        !parseHex64(job->str(), jobId)) {
        sendError(conn, "cancel requires a 'job' id string");
        return;
    }
    std::size_t removed = 0;
    auto jt = jobs_.find(jobId);
    if (jt != jobs_.end()) {
        jt->second.cancelled = true;
        std::vector<std::uint64_t> killed;
        for (auto &[key, cellPtr] : cells_) {
            Cell &cell = *cellPtr;
            auto end = std::remove_if(
                cell.waiters.begin(), cell.waiters.end(),
                [jobId](const Cell::Waiter &w) { return w.job == jobId; });
            std::size_t n =
                static_cast<std::size_t>(cell.waiters.end() - end);
            cell.waiters.erase(end, cell.waiters.end());
            removed += n;
            if (n == 0 || !cell.waiters.empty())
                continue;
            // A queued/retrying cell nobody wants any more is skipped
            // when its turn comes; a RUNNING one is killed right now —
            // cancellation frees the worker slot promptly instead of
            // letting an unwanted simulation hold it (possibly for
            // minutes).
            if (cell.state == CellState::Running) {
                if (pool_->killCell(key)) {
                    ++stats_.workersCancelKilled;
                    ++stats_.cellsSkipped;
                    killed.push_back(key);
                }
            } else if (cell.state != CellState::Done) {
                cell.abandoned = true;
            }
        }
        for (std::uint64_t key : killed)
            cells_.erase(key);
        jt->second.skipped += removed;
        ++stats_.jobsCancelled;
    }
    JsonValue v = JsonValue::makeObject();
    v.set("type", JsonValue::makeString("cancelled"));
    v.set("proto", JsonValue::makeNumber(kProtoVersion));
    v.set("job", JsonValue::makeString(hex64(jobId)));
    v.set("removed", JsonValue::makeNumber(static_cast<double>(removed)));
    sendJson(conn, v);
    finishJobIfDone(jobId);
    dispatchPending();
}

void
Server::handleStats(Conn &conn)
{
    std::size_t running = 0, queued = 0, cached = 0, retrying = 0;
    for (const auto &[key, cell] : cells_) {
        switch (cell->state) {
        case CellState::Queued: ++queued; break;
        case CellState::Running: ++running; break;
        case CellState::RetryWait: ++retrying; break;
        case CellState::Done: ++cached; break;
        }
    }
    JsonValue v = JsonValue::makeObject();
    v.set("type", JsonValue::makeString("stats"));
    v.set("proto", JsonValue::makeNumber(kProtoVersion));
    v.set("jobs_active",
          JsonValue::makeNumber(static_cast<double>(jobs_.size())));
    v.set("cells_queued",
          JsonValue::makeNumber(static_cast<double>(queued)));
    v.set("cells_running",
          JsonValue::makeNumber(static_cast<double>(running)));
    v.set("cells_retry_wait",
          JsonValue::makeNumber(static_cast<double>(retrying)));
    v.set("cells_cached",
          JsonValue::makeNumber(static_cast<double>(cached)));
    auto num = [](std::uint64_t x) {
        return JsonValue::makeNumber(static_cast<double>(x));
    };
    v.set("jobs_accepted", num(stats_.jobsAccepted));
    v.set("jobs_cancelled", num(stats_.jobsCancelled));
    v.set("jobs_rejected", num(stats_.jobsRejected));
    v.set("cells_submitted", num(stats_.cellsSubmitted));
    v.set("cells_simulated", num(stats_.cellsSimulated));
    v.set("cells_skipped", num(stats_.cellsSkipped));
    v.set("dedup_hits", num(stats_.dedupHits));
    v.set("disk_hits", num(stats_.diskHits));
    v.set("cells_failed", num(stats_.cellsFailed));
    v.set("cells_retried", num(stats_.cellsRetried));
    v.set("cells_quarantined", num(stats_.cellsQuarantined));
    v.set("cells_shed", num(stats_.cellsShed));
    v.set("workers_crashed", num(stats_.workersCrashed));
    v.set("workers_deadline_killed", num(stats_.workersDeadlineKilled));
    v.set("workers_cancel_killed", num(stats_.workersCancelKilled));
    v.set("fsck_quarantined", num(stats_.fsckQuarantined));
    sendJson(conn, v);
}

void
Server::handleHealth(Conn &conn)
{
    JsonValue v = JsonValue::makeObject();
    v.set("type", JsonValue::makeString("health"));
    v.set("proto", JsonValue::makeNumber(kProtoVersion));
    v.set("workers", JsonValue::makeNumber(
                         static_cast<double>(pool_->workers())));
    v.set("workers_busy",
          JsonValue::makeNumber(static_cast<double>(pool_->busy())));
    v.set("workers_reaped",
          JsonValue::makeNumber(static_cast<double>(pool_->reaped())));
    JsonValue pids = JsonValue::makeArray();
    for (int pid : pool_->pids())
        pids.append(JsonValue::makeNumber(static_cast<double>(pid)));
    v.set("worker_pids", std::move(pids));
    v.set("queue_depth", JsonValue::makeNumber(
                             static_cast<double>(backlogSize())));
    v.set("admission_limit", JsonValue::makeNumber(static_cast<double>(
                                 opt_.maxQueuedCells)));
    v.set("jobs_active",
          JsonValue::makeNumber(static_cast<double>(jobs_.size())));
    v.set("connections",
          JsonValue::makeNumber(static_cast<double>(conns_.size())));
    v.set("cache_cells", JsonValue::makeNumber(
                             static_cast<double>(diskIndex_.size())));
    v.set("fsck_quarantined", JsonValue::makeNumber(static_cast<double>(
                                  stats_.fsckQuarantined)));
    v.set("deadline_ms", JsonValue::makeNumber(
                             static_cast<double>(opt_.deadlineMs)));
    v.set("max_attempts", JsonValue::makeNumber(
                              static_cast<double>(opt_.maxAttempts)));
    v.set("retry_policy", JsonValue::makeString(
                              fault::retryPolicyToString(opt_.retry)));
    sendJson(conn, v);
}

void
Server::handleFrame(Conn &conn, const std::string &payload)
{
    JsonValue req;
    std::string err;
    if (!JsonValue::parse(payload, req, &err) || !req.isObject()) {
        sendError(conn, "malformed request: " +
                            (err.empty() ? "not an object" : err));
        return;
    }
    const JsonValue *proto = req.find("proto");
    if (proto != nullptr &&
        (!proto->isNumber() ||
         proto->number() != static_cast<double>(kProtoVersion))) {
        sendError(conn, "unsupported protocol version");
        return;
    }
    std::string op = req.getString("op");
    if (op == "ping") {
        JsonValue v = JsonValue::makeObject();
        v.set("type", JsonValue::makeString("pong"));
        v.set("proto", JsonValue::makeNumber(kProtoVersion));
        sendJson(conn, v);
    } else if (op == "stats") {
        handleStats(conn);
    } else if (op == "health") {
        handleHealth(conn);
    } else if (op == "submit") {
        handleSubmit(conn, req);
    } else if (op == "cancel") {
        handleCancel(conn, req);
    } else if (op == "shutdown") {
        JsonValue v = JsonValue::makeObject();
        v.set("type", JsonValue::makeString("shutting_down"));
        v.set("proto", JsonValue::makeNumber(kProtoVersion));
        sendJson(conn, v);
        requestStop();
    } else {
        sendError(conn, "unknown op '" + op + "'");
    }
}

// ---------------------------------------------------------------------------
// Connection plumbing.

void
Server::acceptClients()
{
    while (true) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or a transient error; poll again.
        }
        // Nonblocking: all writes go through the buffered sendJson
        // path, so one slow reader can never stall the poll loop.
        ::fcntl(fd, F_SETFL, O_NONBLOCK);
        Conn conn;
        conn.id = nextConnId_++;
        conn.fd = fd;
        std::uint64_t id = conn.id;
        conns_.emplace(id, std::move(conn));
        if (opt_.verbose)
            std::fprintf(stderr, "smtpd: conn %llu connected\n",
                         static_cast<unsigned long long>(id));
    }
}

void
Server::readClient(Conn &conn)
{
    char buf[65536];
    ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n == 0) {
        conn.dead = true;
        return;
    }
    if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        conn.dead = true;
        conn.writeFailed = true;
        return;
    }
    conn.splitter.feed(buf, static_cast<std::size_t>(n));
    std::string payload;
    while (!conn.dead && conn.splitter.next(payload))
        handleFrame(conn, payload);
    if (!conn.splitter.error().empty())
        sendError(conn, conn.splitter.error());
}

void
Server::dropConn(Conn &conn)
{
    if (opt_.verbose)
        std::fprintf(stderr, "smtpd: conn %llu closed\n",
                     static_cast<unsigned long long>(conn.id));
    // Courtesy flush: error and in-flight reply frames should still
    // reach a live-but-slow peer, but with a hard time bound so a
    // hostile half-open socket cannot wedge the daemon.
    if (!conn.writeFailed && conn.fd >= 0 &&
        conn.outOff < conn.outbuf.size()) {
        auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(1000);
        while (conn.outOff < conn.outbuf.size() &&
               std::chrono::steady_clock::now() < give_up) {
            pollfd p{conn.fd, POLLOUT, 0};
            if (::poll(&p, 1, 100) <= 0)
                continue;
            std::size_t before = conn.outOff;
            flushConn(conn);
            if (conn.writeFailed || conn.outOff == before)
                break;
        }
    }
    // Abandon every job this client owned: nobody is listening for the
    // results, so unstarted cells are skipped (finished ones still land
    // in the cache for the client's next attempt — running ones are
    // left to complete for the same reason, unlike explicit cancel).
    std::vector<std::uint64_t> gone;
    for (auto &[jobId, job] : jobs_) {
        if (job.conn == conn.id)
            gone.push_back(jobId);
    }
    for (auto &[key, cellPtr] : cells_) {
        Cell &cell = *cellPtr;
        auto end = std::remove_if(
            cell.waiters.begin(), cell.waiters.end(),
            [&conn](const Cell::Waiter &w) { return w.conn == conn.id; });
        cell.waiters.erase(end, cell.waiters.end());
        if (cell.waiters.empty() && cell.state != CellState::Done &&
            cell.state != CellState::Running)
            cell.abandoned = true;
    }
    for (std::uint64_t jobId : gone)
        jobs_.erase(jobId);
    if (conn.fd >= 0)
        ::close(conn.fd);
    conn.fd = -1;
}

int
Server::run()
{
    std::string err;
    if (!setup(&err)) {
        std::fprintf(stderr, "smtpd: %s\n", err.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "smtpd: listening on %s (state %s, %u worker "
                 "process%s)\n",
                 opt_.socketPath.c_str(), opt_.stateDir.c_str(),
                 pool_->workers(), pool_->workers() == 1 ? "" : "es");

    std::vector<WorkerEvent> events;
    while (true) {
        if (stopReq_.load())
            stopping_ = true;
        if (stopping_)
            break;
        std::vector<pollfd> fds;
        fds.push_back(pollfd{listenFd_, POLLIN, 0});
        fds.push_back(pollfd{wakeR_, POLLIN, 0});
        std::vector<int> workerFds = pool_->pollFds();
        for (int wfd : workerFds)
            fds.push_back(pollfd{wfd, POLLIN, 0});
        std::vector<std::uint64_t> order;
        for (auto &[id, conn] : conns_) {
            short want = POLLIN;
            if (conn.outOff < conn.outbuf.size())
                want |= POLLOUT;
            fds.push_back(pollfd{conn.fd, want, 0});
            order.push_back(id);
        }
        int rc = ::poll(fds.data(), fds.size(), nextTimeoutMs());
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "smtpd: poll: %s\n",
                         std::strerror(errno));
            break;
        }
        if ((fds[1].revents & POLLIN) != 0) {
            char buf[256];
            while (::read(wakeR_, buf, sizeof(buf)) > 0) {
            }
        }
        // Worker pipes and timers first: completions free worker slots
        // and retry promotions fill the queue, so the dispatch below
        // sees the freshest picture.
        events.clear();
        pool_->service(events);
        for (const WorkerEvent &ev : events)
            onWorkerEvent(ev);
        promoteDueRetries(std::chrono::steady_clock::now());
        if ((fds[0].revents & POLLIN) != 0)
            acceptClients();
        std::size_t connBase = 2 + workerFds.size();
        for (std::size_t i = 0; i < order.size(); ++i) {
            auto it = conns_.find(order[i]);
            if (it == conns_.end())
                continue;
            short re = fds[connBase + i].revents;
            if ((re & (POLLERR | POLLNVAL)) != 0)
                it->second.dead = true;
            else if ((re & (POLLIN | POLLHUP)) != 0)
                readClient(it->second);
            if (!it->second.dead && (re & POLLOUT) != 0)
                flushConn(it->second);
        }
        dispatchPending();
        for (auto it = conns_.begin(); it != conns_.end();) {
            if (it->second.dead) {
                dropConn(it->second);
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }

    // Clean shutdown: stop accepting, let in-flight simulations finish
    // (their records land in the cache and reach their waiters), fail
    // anything that breaks during the drain (no retries while
    // stopping), skip everything still queued, then close every
    // connection with a bounded flush.
    ::close(listenFd_);
    listenFd_ = -1;
    while (pool_->busy() > 0) {
        std::vector<int> workerFds = pool_->pollFds();
        std::vector<pollfd> fds;
        for (int wfd : workerFds)
            fds.push_back(pollfd{wfd, POLLIN, 0});
        int timeout = pool_->nextDeadlineMs(
            std::chrono::steady_clock::now());
        ::poll(fds.data(), fds.size(), timeout < 0 ? 200 : timeout);
        events.clear();
        pool_->service(events);
        for (const WorkerEvent &ev : events)
            onWorkerEvent(ev);
    }
    for (auto &[id, conn] : conns_) {
        conn.dead = true;
        dropConn(conn);
    }
    conns_.clear();
    std::fprintf(
        stderr,
        "smtpd: shutdown (%llu simulated, %llu dedup hits, %llu disk "
        "hits, %llu workers reaped)\n",
        static_cast<unsigned long long>(stats_.cellsSimulated),
        static_cast<unsigned long long>(stats_.dedupHits),
        static_cast<unsigned long long>(stats_.diskHits),
        static_cast<unsigned long long>(pool_->reaped()));
    return 0;
}

} // namespace smtp::serve
