#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "serve/proto.hpp"
#include "workload/app.hpp"

namespace smtp::serve
{

namespace
{

bool
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
        return true;
    std::fprintf(stderr, "smtpd: mkdir %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
}

/** makeApp() accepts the canonical name or its all-lowercase form. */
bool
knownApp(const std::string &name)
{
    auto matches = [&](const std::vector<std::string> &names) {
        for (const std::string &n : names) {
            if (name == n)
                return true;
            std::string lower = n;
            for (char &c : lower)
                c = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
            if (name == lower)
                return true;
        }
        return false;
    };
    return matches(workload::appNames()) ||
           matches(workload::serverAppNames());
}

} // namespace

Server::Server(ServerOptions opt) : opt_(std::move(opt)) {}

Server::~Server()
{
    // Tear the pool down first: workers hold shared_ptr<Cell> and post
    // completions through the self-pipe, which must both outlive them.
    pool_.reset();
    for (auto &[id, conn] : conns_) {
        if (conn.fd >= 0)
            ::close(conn.fd);
    }
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (wakeR_ >= 0)
        ::close(wakeR_);
    if (wakeW_ >= 0)
        ::close(wakeW_);
    if (!opt_.socketPath.empty())
        ::unlink(opt_.socketPath.c_str());
}

void
Server::wakePoll()
{
    char b = 'w';
    // Best-effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t r = ::write(wakeW_, &b, 1);
}

void
Server::requestStop()
{
    static_cast<void>(stopReq_.exchange(true));
    char b = 's';
    [[maybe_unused]] ssize_t r = ::write(wakeW_, &b, 1);
}

bool
Server::setup(std::string *err)
{
    if (opt_.socketPath.empty() || opt_.stateDir.empty()) {
        *err = "socket path and state dir are both required";
        return false;
    }
    if (!ensureDir(opt_.stateDir) ||
        !ensureDir(opt_.stateDir + "/ckpt") ||
        !ensureDir(opt_.stateDir + "/results") ||
        !ensureDir(opt_.stateDir + "/traces")) {
        *err = "cannot create state directory layout";
        return false;
    }
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
        *err = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    wakeR_ = pipefd[0];
    wakeW_ = pipefd[1];
    // Non-blocking write end so requestStop() from a signal handler
    // can never wedge; non-blocking read end so draining is a loop.
    ::fcntl(wakeR_, F_SETFL, O_NONBLOCK);
    ::fcntl(wakeW_, F_SETFL, O_NONBLOCK);
    listenFd_ = listenSocket(opt_.socketPath, err);
    if (listenFd_ < 0)
        return false;
    // Non-blocking so acceptClients() can drain the backlog and return.
    ::fcntl(listenFd_, F_SETFL, O_NONBLOCK);
    pool_ = std::make_unique<SweepPool>(opt_.jobs);
    scanResultCache();
    return true;
}

std::string
Server::resultPath(std::uint64_t key) const
{
    return opt_.stateDir + "/results/cell_" + hex64(key) + ".json";
}

void
Server::scanResultCache()
{
    DIR *d = ::opendir((opt_.stateDir + "/results").c_str());
    if (d == nullptr)
        return;
    while (dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name.size() != 5 + 16 + 5 || name.rfind("cell_", 0) != 0 ||
            name.substr(21) != ".json")
            continue;
        std::uint64_t key;
        if (parseHex64(name.substr(5, 16), key))
            diskIndex_[key] = true;
    }
    ::closedir(d);
    if (opt_.verbose && !diskIndex_.empty())
        std::fprintf(stderr, "smtpd: rehydrated %zu cached cell(s)\n",
                     diskIndex_.size());
}

bool
Server::loadCachedRecord(std::uint64_t key, std::string &record,
                         RunResult &result)
{
    std::FILE *f = std::fopen(resultPath(key).c_str(), "rb");
    if (f == nullptr)
        return false;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    JsonValue v;
    std::string err;
    if (!JsonValue::parse(text, v, &err) || !v.isObject()) {
        std::fprintf(stderr, "smtpd: corrupt result cache %s: %s\n",
                     resultPath(key).c_str(), err.c_str());
        return false;
    }
    const JsonValue *rec = v.find("record");
    if (rec == nullptr || !rec->isString())
        return false;
    record = rec->str();
    const JsonValue *res = v.find("result");
    if (res != nullptr && res->isObject())
        result = resultFromJson(*res);
    return true;
}

void
Server::storeCachedRecord(std::uint64_t key, const std::string &record,
                          const RunResult &result)
{
    JsonValue v = JsonValue::makeObject();
    v.set("key", JsonValue::makeString(hex64(key)));
    v.set("record", JsonValue::makeString(record));
    v.set("result", resultToJson(result));
    std::string text = v.dump();
    std::string path = resultPath(key);
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    // Atomic publish: a crashed daemon never leaves a torn cache file.
    ::rename(tmp.c_str(), path.c_str());
    diskIndex_[key] = true;
}

bool
Server::sendJson(Conn &conn, const JsonValue &v)
{
    if (conn.dead)
        return false;
    std::string err;
    if (!writeFrame(conn.fd, v.dump(), &err)) {
        if (opt_.verbose)
            std::fprintf(stderr, "smtpd: conn %llu write: %s\n",
                         static_cast<unsigned long long>(conn.id),
                         err.c_str());
        conn.dead = true;
        return false;
    }
    return true;
}

void
Server::sendError(Conn &conn, const std::string &msg)
{
    JsonValue v = JsonValue::makeObject();
    v.set("type", JsonValue::makeString("error"));
    v.set("proto", JsonValue::makeNumber(kProtoVersion));
    v.set("message", JsonValue::makeString(msg));
    sendJson(conn, v);
    // A protocol error is not recoverable mid-stream: drop the client
    // rather than guess where its next frame boundary is.
    conn.dead = true;
}

void
Server::deliverCell(const Cell &cell, const Cell::Waiter &w, bool cached)
{
    auto it = conns_.find(w.conn);
    if (it == conns_.end())
        return;
    JsonValue v = JsonValue::makeObject();
    v.set("type", JsonValue::makeString("cell"));
    v.set("proto", JsonValue::makeNumber(kProtoVersion));
    v.set("job", JsonValue::makeString(hex64(w.job)));
    v.set("index", JsonValue::makeNumber(static_cast<double>(w.index)));
    v.set("key", JsonValue::makeString(hex64(cell.key)));
    v.set("cached", JsonValue::makeBool(cached));
    v.set("record", JsonValue::makeString(cell.record));
    v.set("result", resultToJson(cell.result));
    if (!cell.cfg.traceStem.empty() && cell.cfg.traceStem != "?")
        v.set("trace_stem", JsonValue::makeString(cell.cfg.traceStem));
    sendJson(it->second, v);
}

void
Server::finishJobIfDone(std::uint64_t jobId)
{
    auto jt = st_.jobs.find(jobId);
    if (jt == st_.jobs.end())
        return;
    Job &job = jt->second;
    if (job.delivered + job.skipped < job.cells)
        return;
    auto ct = conns_.find(job.conn);
    if (ct != conns_.end()) {
        JsonValue v = JsonValue::makeObject();
        v.set("type", JsonValue::makeString("done"));
        v.set("proto", JsonValue::makeNumber(kProtoVersion));
        v.set("job", JsonValue::makeString(hex64(job.id)));
        v.set("completed",
              JsonValue::makeNumber(static_cast<double>(job.delivered)));
        v.set("skipped",
              JsonValue::makeNumber(static_cast<double>(job.skipped)));
        sendJson(ct->second, v);
    }
    st_.jobs.erase(jt);
}

void
Server::workerRun(std::shared_ptr<Cell> cell)
{
    {
        std::lock_guard<std::mutex> lk(st_.mtx);
        if (st_.stopping || (cell->abandoned && cell->waiters.empty())) {
            ++st_.stats.cellsSkipped;
            st_.cells.erase(cell->key);
            return;
        }
        cell->state = CellState::Running;
    }
    if (opt_.verbose)
        std::fprintf(stderr, "smtpd: cell %s simulating (%s %s n%u w%u)\n",
                     hex64(cell->key).c_str(),
                     std::string(modelName(cell->cfg.model)).c_str(),
                     cell->cfg.app.c_str(), cell->cfg.nodes,
                     cell->cfg.ways);
    RunResult r = runOnce(cell->cfg);
    std::string record = jsonRecord(cell->cfg, r);
    {
        std::lock_guard<std::mutex> lk(st_.mtx);
        cell->record = std::move(record);
        cell->result = r;
        cell->state = CellState::Done;
        ++st_.stats.cellsSimulated;
        st_.completions.push_back(cell->key);
    }
    wakePoll();
}

void
Server::drainCompletions()
{
    std::lock_guard<std::mutex> lk(st_.mtx);
    while (!st_.completions.empty()) {
        std::uint64_t key = st_.completions.front();
        st_.completions.pop_front();
        auto it = st_.cells.find(key);
        if (it == st_.cells.end())
            continue;
        Cell &cell = *it->second;
        // Checked cells are cacheable too: the record is final either
        // way. Trace cells are cached as records; artifacts stay on
        // disk under traces/ and are referenced by path.
        storeCachedRecord(key, cell.record, cell.result);
        std::vector<Cell::Waiter> waiters;
        waiters.swap(cell.waiters);
        for (const Cell::Waiter &w : waiters) {
            deliverCell(cell, w, /*cached=*/false);
            auto jt = st_.jobs.find(w.job);
            if (jt != st_.jobs.end()) {
                ++jt->second.delivered;
                finishJobIfDone(w.job);
            }
        }
    }
}

void
Server::handleSubmit(Conn &conn, const JsonValue &req)
{
    for (const auto &[key, value] : req.members()) {
        if (key != "op" && key != "proto" && key != "priority" &&
            key != "cells") {
            sendError(conn, "unknown request field '" + key + "'");
            return;
        }
    }
    int priority = 0;
    const JsonValue *prio = req.find("priority");
    if (prio != nullptr) {
        if (!prio->isNumber()) {
            sendError(conn, "priority must be a number");
            return;
        }
        priority = static_cast<int>(prio->number());
    }
    const JsonValue *cells = req.find("cells");
    if (cells == nullptr || !cells->isArray() || cells->array().empty()) {
        sendError(conn, "submit requires a non-empty 'cells' array");
        return;
    }
    std::vector<RunConfig> cfgs;
    cfgs.reserve(cells->array().size());
    for (std::size_t i = 0; i < cells->array().size(); ++i) {
        RunConfig cfg;
        std::string err;
        if (!cellFromJson(cells->array()[i], cfg, &err)) {
            sendError(conn, "cell " + std::to_string(i) + ": " + err);
            return;
        }
        if (!knownApp(cfg.app)) {
            sendError(conn, "cell " + std::to_string(i) +
                                ": unknown application '" + cfg.app +
                                "'");
            return;
        }
        // The daemon owns the checkpoint farm; whatever the client had
        // configured locally is irrelevant here.
        cfg.ckptDir = cfg.checkLevel == check::CheckLevel::Off
                          ? opt_.stateDir + "/ckpt"
                          : std::string();
        cfgs.push_back(std::move(cfg));
    }

    std::lock_guard<std::mutex> lk(st_.mtx);
    std::uint64_t jobId = nextJobId_++;
    Job job;
    job.id = jobId;
    job.conn = conn.id;
    job.cells = cfgs.size();
    st_.jobs.emplace(jobId, job);
    ++st_.stats.jobsAccepted;
    st_.stats.cellsSubmitted += cfgs.size();

    JsonValue acc = JsonValue::makeObject();
    acc.set("type", JsonValue::makeString("accepted"));
    acc.set("proto", JsonValue::makeNumber(kProtoVersion));
    acc.set("job", JsonValue::makeString(hex64(jobId)));
    acc.set("cells",
            JsonValue::makeNumber(static_cast<double>(cfgs.size())));
    sendJson(conn, acc);

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        RunConfig &cfg = cfgs[i];
        std::uint64_t key = cellKey(cfg);
        // The trace stem is daemon-assigned and keyed by the cell, so
        // re-submissions overwrite rather than accumulate artifacts.
        // cellKey() only folds in *whether* tracing is on, never the
        // stem string, so this substitution cannot change the key.
        if (cfg.traceStem == "?")
            cfg.traceStem =
                opt_.stateDir + "/traces/cell_" + hex64(key);

        auto it = st_.cells.find(key);
        if (it != st_.cells.end()) {
            Cell &cell = *it->second;
            ++st_.stats.dedupHits;
            if (cell.state == CellState::Done) {
                deliverCell(cell, Cell::Waiter{conn.id, jobId, i},
                            /*cached=*/true);
                ++st_.jobs[jobId].delivered;
            } else {
                cell.abandoned = false;
                cell.waiters.push_back(Cell::Waiter{conn.id, jobId, i});
            }
            continue;
        }

        auto cell = std::make_shared<Cell>();
        cell->key = key;
        cell->cfg = cfg;
        std::string record;
        RunResult cached;
        if (diskIndex_.count(key) != 0 &&
            loadCachedRecord(key, record, cached)) {
            cell->state = CellState::Done;
            cell->fromCache = true;
            cell->record = std::move(record);
            cell->result = cached;
            st_.cells.emplace(key, cell);
            ++st_.stats.diskHits;
            deliverCell(*cell, Cell::Waiter{conn.id, jobId, i},
                        /*cached=*/true);
            ++st_.jobs[jobId].delivered;
            continue;
        }
        cell->waiters.push_back(Cell::Waiter{conn.id, jobId, i});
        st_.cells.emplace(key, cell);
        pool_->enqueue(priority,
                       [this, cell]() mutable { workerRun(cell); });
    }
    finishJobIfDone(jobId);
}

void
Server::handleCancel(Conn &conn, const JsonValue &req)
{
    for (const auto &[key, value] : req.members()) {
        if (key != "op" && key != "proto" && key != "job") {
            sendError(conn, "unknown request field '" + key + "'");
            return;
        }
    }
    std::uint64_t jobId;
    const JsonValue *job = req.find("job");
    if (job == nullptr || !job->isString() ||
        !parseHex64(job->str(), jobId)) {
        sendError(conn, "cancel requires a 'job' id string");
        return;
    }
    std::lock_guard<std::mutex> lk(st_.mtx);
    std::size_t removed = 0;
    auto jt = st_.jobs.find(jobId);
    if (jt != st_.jobs.end()) {
        jt->second.cancelled = true;
        for (auto &[key, cellPtr] : st_.cells) {
            Cell &cell = *cellPtr;
            auto end = std::remove_if(
                cell.waiters.begin(), cell.waiters.end(),
                [jobId](const Cell::Waiter &w) { return w.job == jobId; });
            std::size_t n =
                static_cast<std::size_t>(cell.waiters.end() - end);
            cell.waiters.erase(end, cell.waiters.end());
            removed += n;
            // A queued cell nobody wants any more is skipped by the
            // worker when its turn comes; a running one completes and
            // lands in the cache.
            if (cell.waiters.empty() && cell.state == CellState::Queued)
                cell.abandoned = true;
        }
        jt->second.skipped += removed;
        ++st_.stats.jobsCancelled;
    }
    JsonValue v = JsonValue::makeObject();
    v.set("type", JsonValue::makeString("cancelled"));
    v.set("proto", JsonValue::makeNumber(kProtoVersion));
    v.set("job", JsonValue::makeString(hex64(jobId)));
    v.set("removed", JsonValue::makeNumber(static_cast<double>(removed)));
    sendJson(conn, v);
    finishJobIfDone(jobId);
}

void
Server::handleStats(Conn &conn)
{
    std::lock_guard<std::mutex> lk(st_.mtx);
    std::size_t running = 0, queued = 0, cached = 0;
    for (const auto &[key, cell] : st_.cells) {
        switch (cell->state) {
        case CellState::Queued: ++queued; break;
        case CellState::Running: ++running; break;
        case CellState::Done: ++cached; break;
        }
    }
    JsonValue v = JsonValue::makeObject();
    v.set("type", JsonValue::makeString("stats"));
    v.set("proto", JsonValue::makeNumber(kProtoVersion));
    v.set("jobs_active",
          JsonValue::makeNumber(static_cast<double>(st_.jobs.size())));
    v.set("cells_queued",
          JsonValue::makeNumber(static_cast<double>(queued)));
    v.set("cells_running",
          JsonValue::makeNumber(static_cast<double>(running)));
    v.set("cells_cached",
          JsonValue::makeNumber(static_cast<double>(cached)));
    auto num = [](std::uint64_t x) {
        return JsonValue::makeNumber(static_cast<double>(x));
    };
    v.set("jobs_accepted", num(st_.stats.jobsAccepted));
    v.set("jobs_cancelled", num(st_.stats.jobsCancelled));
    v.set("cells_submitted", num(st_.stats.cellsSubmitted));
    v.set("cells_simulated", num(st_.stats.cellsSimulated));
    v.set("cells_skipped", num(st_.stats.cellsSkipped));
    v.set("dedup_hits", num(st_.stats.dedupHits));
    v.set("disk_hits", num(st_.stats.diskHits));
    sendJson(conn, v);
}

void
Server::handleFrame(Conn &conn, const std::string &payload)
{
    JsonValue req;
    std::string err;
    if (!JsonValue::parse(payload, req, &err) || !req.isObject()) {
        sendError(conn, "malformed request: " +
                            (err.empty() ? "not an object" : err));
        return;
    }
    const JsonValue *proto = req.find("proto");
    if (proto != nullptr &&
        (!proto->isNumber() ||
         proto->number() != static_cast<double>(kProtoVersion))) {
        sendError(conn, "unsupported protocol version");
        return;
    }
    std::string op = req.getString("op");
    if (op == "ping") {
        JsonValue v = JsonValue::makeObject();
        v.set("type", JsonValue::makeString("pong"));
        v.set("proto", JsonValue::makeNumber(kProtoVersion));
        sendJson(conn, v);
    } else if (op == "stats") {
        handleStats(conn);
    } else if (op == "submit") {
        handleSubmit(conn, req);
    } else if (op == "cancel") {
        handleCancel(conn, req);
    } else if (op == "shutdown") {
        JsonValue v = JsonValue::makeObject();
        v.set("type", JsonValue::makeString("shutting_down"));
        v.set("proto", JsonValue::makeNumber(kProtoVersion));
        sendJson(conn, v);
        requestStop();
    } else {
        sendError(conn, "unknown op '" + op + "'");
    }
}

void
Server::acceptClients()
{
    while (true) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or a transient error; poll again.
        }
        Conn conn;
        conn.id = nextConnId_++;
        conn.fd = fd;
        std::uint64_t id = conn.id;
        conns_.emplace(id, std::move(conn));
        if (opt_.verbose)
            std::fprintf(stderr, "smtpd: conn %llu connected\n",
                         static_cast<unsigned long long>(id));
    }
}

void
Server::readClient(Conn &conn)
{
    char buf[65536];
    ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n == 0) {
        conn.dead = true;
        return;
    }
    if (n < 0) {
        if (errno == EINTR || errno == EAGAIN)
            return;
        conn.dead = true;
        return;
    }
    conn.splitter.feed(buf, static_cast<std::size_t>(n));
    std::string payload;
    while (!conn.dead && conn.splitter.next(payload))
        handleFrame(conn, payload);
    if (!conn.splitter.error().empty())
        sendError(conn, conn.splitter.error());
}

void
Server::dropConn(Conn &conn)
{
    if (opt_.verbose)
        std::fprintf(stderr, "smtpd: conn %llu closed\n",
                     static_cast<unsigned long long>(conn.id));
    std::lock_guard<std::mutex> lk(st_.mtx);
    // Abandon every job this client owned: nobody is listening for the
    // results, so unstarted cells are skipped (finished ones still land
    // in the cache for the client's next attempt).
    std::vector<std::uint64_t> gone;
    for (auto &[jobId, job] : st_.jobs) {
        if (job.conn == conn.id)
            gone.push_back(jobId);
    }
    for (auto &[key, cellPtr] : st_.cells) {
        Cell &cell = *cellPtr;
        auto end = std::remove_if(
            cell.waiters.begin(), cell.waiters.end(),
            [&conn](const Cell::Waiter &w) { return w.conn == conn.id; });
        cell.waiters.erase(end, cell.waiters.end());
        if (cell.waiters.empty() && cell.state == CellState::Queued)
            cell.abandoned = true;
    }
    for (std::uint64_t jobId : gone)
        st_.jobs.erase(jobId);
    if (conn.fd >= 0)
        ::close(conn.fd);
    conn.fd = -1;
}

int
Server::run()
{
    std::string err;
    if (!setup(&err)) {
        std::fprintf(stderr, "smtpd: %s\n", err.c_str());
        return 1;
    }
    std::fprintf(stderr, "smtpd: listening on %s (state %s, %u job%s)\n",
                 opt_.socketPath.c_str(), opt_.stateDir.c_str(),
                 pool_->jobs(), pool_->jobs() == 1 ? "" : "s");

    while (true) {
        if (stopReq_.load()) {
            std::lock_guard<std::mutex> lk(st_.mtx);
            st_.stopping = true;
        }
        {
            std::lock_guard<std::mutex> lk(st_.mtx);
            if (st_.stopping)
                break;
        }
        std::vector<pollfd> fds;
        fds.push_back(pollfd{listenFd_, POLLIN, 0});
        fds.push_back(pollfd{wakeR_, POLLIN, 0});
        std::vector<std::uint64_t> order;
        for (auto &[id, conn] : conns_) {
            fds.push_back(pollfd{conn.fd, POLLIN, 0});
            order.push_back(id);
        }
        int rc = ::poll(fds.data(), fds.size(), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "smtpd: poll: %s\n",
                         std::strerror(errno));
            break;
        }
        if ((fds[1].revents & POLLIN) != 0) {
            char buf[256];
            while (::read(wakeR_, buf, sizeof(buf)) > 0) {
            }
        }
        drainCompletions();
        if ((fds[0].revents & POLLIN) != 0)
            acceptClients();
        for (std::size_t i = 0; i < order.size(); ++i) {
            auto it = conns_.find(order[i]);
            if (it == conns_.end())
                continue;
            short re = fds[2 + i].revents;
            if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0)
                it->second.dead = true;
            else if ((re & POLLIN) != 0)
                readClient(it->second);
        }
        for (auto it = conns_.begin(); it != conns_.end();) {
            if (it->second.dead) {
                dropConn(it->second);
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }

    // Clean shutdown: stop accepting, let running simulations finish
    // (their records land in the cache), skip everything still queued,
    // flush what completed, then close every connection.
    ::close(listenFd_);
    listenFd_ = -1;
    pool_->drainService();
    drainCompletions();
    for (auto &[id, conn] : conns_) {
        conn.dead = true;
        dropConn(conn);
    }
    conns_.clear();
    std::fprintf(stderr,
                 "smtpd: shutdown (%llu simulated, %llu dedup hits, "
                 "%llu disk hits)\n",
                 static_cast<unsigned long long>(st_.stats.cellsSimulated),
                 static_cast<unsigned long long>(st_.stats.dedupHits),
                 static_cast<unsigned long long>(st_.stats.diskHits));
    return 0;
}

} // namespace smtp::serve
