#include "serve/wire.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace smtp::serve
{

namespace
{

void
setErr(std::string *err, const std::string &msg)
{
    if (err != nullptr)
        *err = msg;
}

std::string
errnoStr(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** Read exactly n bytes; 1 = got them, 0 = EOF before any byte, -1 = error/short. */
int
readExact(int fd, char *buf, std::size_t n, std::string *err)
{
    std::size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, buf + got, n - got);
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        if (r == 0) {
            if (got == 0)
                return 0;
            setErr(err, "connection closed mid-frame");
            return -1;
        }
        if (errno == EINTR)
            continue;
        setErr(err, errnoStr("read"));
        return -1;
    }
    return 1;
}

std::uint32_t
decodeLen(const unsigned char *b)
{
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
}

} // namespace

std::string
encodeFrame(std::string_view payload)
{
    if (payload.size() > kMaxFrame)
        return std::string();
    std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    unsigned char hdr[4] = {
        static_cast<unsigned char>(len & 0xff),
        static_cast<unsigned char>((len >> 8) & 0xff),
        static_cast<unsigned char>((len >> 16) & 0xff),
        static_cast<unsigned char>((len >> 24) & 0xff),
    };
    std::string buf(reinterpret_cast<char *>(hdr), 4);
    buf.append(payload);
    return buf;
}

bool
writeFrame(int fd, std::string_view payload, std::string *err)
{
    if (payload.size() > kMaxFrame) {
        setErr(err, "frame payload exceeds 16 MiB cap");
        return false;
    }
    std::string buf = encodeFrame(payload);
    std::size_t sent = 0;
    // Short writes and EINTR are both routine on a stream socket under
    // signal load (the daemon handles SIGINT/SIGTERM/SIGCHLD traffic);
    // loop until the whole frame is out or the socket errors. A peer
    // that half-closed its read side surfaces as EPIPE here thanks to
    // MSG_NOSIGNAL — the caller gets `false`, not a fatal SIGPIPE.
    while (sent < buf.size()) {
        ssize_t w = ::send(fd, buf.data() + sent, buf.size() - sent,
                           MSG_NOSIGNAL);
        if (w >= 0) {
            sent += static_cast<std::size_t>(w);
            continue;
        }
        if (errno == EINTR)
            continue;
        setErr(err, errnoStr("send"));
        return false;
    }
    return true;
}

int
readFrame(int fd, std::string &payload, std::string *err)
{
    unsigned char hdr[4];
    int r = readExact(fd, reinterpret_cast<char *>(hdr), 4, err);
    if (r <= 0)
        return r;
    std::uint32_t len = decodeLen(hdr);
    if (len > kMaxFrame) {
        setErr(err, "frame length prefix exceeds 16 MiB cap");
        return -1;
    }
    payload.resize(len);
    if (len == 0)
        return 1;
    r = readExact(fd, payload.data(), len, err);
    if (r == 1)
        return 1;
    if (r == 0)
        setErr(err, "connection closed mid-frame");
    return -1;
}

void
FrameSplitter::feed(const char *data, std::size_t n)
{
    if (!err_.empty())
        return;
    buf_.append(data, n);
}

bool
FrameSplitter::next(std::string &payload)
{
    if (!err_.empty() || buf_.size() < 4)
        return false;
    std::uint32_t len =
        decodeLen(reinterpret_cast<const unsigned char *>(buf_.data()));
    if (len > kMaxFrame) {
        err_ = "frame length prefix exceeds 16 MiB cap";
        buf_.clear();
        return false;
    }
    if (buf_.size() < 4u + len)
        return false;
    payload.assign(buf_, 4, len);
    buf_.erase(0, 4u + len);
    return true;
}

int
connectSocket(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        setErr(err, "socket path too long");
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setErr(err, errnoStr("socket"));
        return -1;
    }
    // connect(2) is NOT restartable after EINTR on all kernels; retry
    // explicitly (EISCONN means an interrupted attempt completed).
    while (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)) != 0) {
        if (errno == EINTR)
            continue;
        if (errno == EISCONN)
            break;
        setErr(err, errnoStr(("connect " + path).c_str()));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenSocket(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        setErr(err, "socket path too long");
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setErr(err, errnoStr("socket"));
        return -1;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        setErr(err, errnoStr(("bind " + path).c_str()));
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 16) != 0) {
        setErr(err, errnoStr("listen"));
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace smtp::serve
