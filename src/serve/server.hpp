/**
 * @file
 * smtpd: the sweep-service daemon.
 *
 * One Server owns a listening UNIX socket, a SweepPool in service mode
 * (simulations run on its worker threads with per-job priorities), a
 * single warm checkpoint farm shared by every client, and an on-disk
 * result cache that survives restarts. Clients submit jobs — lists of
 * sweep cells — and receive results as a stream of frames, one per
 * cell, as each completes.
 *
 * ## Dedup
 *
 * Cells are identified by serve::cellKey(): two clients submitting the
 * same cell (even in different jobs, even concurrently) share ONE
 * simulation, and both receive the identical record. A cell finished
 * in a previous daemon lifetime is served from the on-disk result
 * cache without simulating at all.
 *
 * ## Threading
 *
 * A single server thread runs the poll loop: accepts, reads frames,
 * writes frames, mutates all job/cell bookkeeping. SweepPool workers
 * only simulate; they hand completed cells back through a queue and a
 * self-pipe wakeup, never touching a socket. All shared state is
 * guarded by one mutex (st_.mtx); the simulations themselves run
 * unlocked.
 *
 * ## Determinism
 *
 * Workers call the same serve::runOnce()/jsonRecord() the bench
 * binaries use, so a served record is byte-identical to a direct local
 * run's record modulo wall_ms. docs/service.md states the guarantee
 * and its boundaries (exec-traced artifacts carry host time).
 */

#ifndef SMTP_SERVE_SERVER_HPP
#define SMTP_SERVE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/json.hpp"
#include "serve/runner.hpp"
#include "serve/wire.hpp"
#include "sim/sweep.hpp"

namespace smtp::serve
{

struct ServerOptions
{
    std::string socketPath; ///< UNIX socket to listen on (required).
    /**
     * State directory (required): ckpt/ holds the shared checkpoint
     * farm, results/ the restart-surviving record cache, traces/ the
     * per-cell trace artifacts for cells submitted with "trace".
     */
    std::string stateDir;
    unsigned jobs = 0;    ///< Simulation workers; 0 = SweepPool default.
    bool verbose = false; ///< Per-cell stderr progress lines.
};

struct ServerStats
{
    std::uint64_t jobsAccepted = 0;
    std::uint64_t jobsCancelled = 0;
    std::uint64_t cellsSubmitted = 0;
    std::uint64_t cellsSimulated = 0;
    std::uint64_t cellsSkipped = 0;  ///< Abandoned before starting.
    std::uint64_t dedupHits = 0;     ///< Joined an in-flight/finished cell.
    std::uint64_t diskHits = 0;      ///< Served from the result cache.
};

class Server
{
  public:
    explicit Server(ServerOptions opt);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, rehydrate the result cache, and serve until shutdown (a
     * "shutdown" request or requestStop(), e.g. from a signal
     * handler). Returns 0 on clean shutdown, 1 on setup failure (error
     * on stderr).
     */
    int run();

    /** Async-signal-safe stop request (writes the self-pipe). */
    void requestStop();

    const ServerStats &stats() const { return st_.stats; }

  private:
    enum class CellState : std::uint8_t
    {
        Queued,  ///< In the SweepPool service queue.
        Running, ///< A worker is simulating it.
        Done,    ///< record is final (simulated or cache-served).
    };

    /** One deduplicated unit of simulation work. */
    struct Cell
    {
        std::uint64_t key = 0;
        RunConfig cfg;
        CellState state = CellState::Queued;
        bool abandoned = false; ///< No waiters left; skip if not started.
        bool fromCache = false; ///< Served from disk, not simulated here.
        std::string record;     ///< jsonRecord() line, final when Done.
        RunResult result;       ///< Structured twin of record.
        /** (connection id, job id, index-in-job) still owed this cell. */
        struct Waiter
        {
            std::uint64_t conn;
            std::uint64_t job;
            std::size_t index;
        };
        std::vector<Waiter> waiters;
    };

    struct Job
    {
        std::uint64_t id = 0;
        std::uint64_t conn = 0;
        std::size_t cells = 0;
        std::size_t delivered = 0;
        std::size_t skipped = 0;
        bool cancelled = false;
    };

    struct Conn
    {
        std::uint64_t id = 0;
        int fd = -1;
        FrameSplitter splitter;
        bool dead = false;
    };

    struct State
    {
        std::mutex mtx;
        std::unordered_map<std::uint64_t, std::shared_ptr<Cell>> cells;
        std::unordered_map<std::uint64_t, Job> jobs;
        std::deque<std::uint64_t> completions; ///< Cell keys, worker → poll.
        ServerStats stats;
        bool stopping = false;
    };

    // Poll-thread only.
    bool setup(std::string *err);
    void acceptClients();
    void readClient(Conn &conn);
    void handleFrame(Conn &conn, const std::string &payload);
    void handleSubmit(Conn &conn, const JsonValue &req);
    void handleCancel(Conn &conn, const JsonValue &req);
    void handleStats(Conn &conn);
    void drainCompletions();
    /** @p cached: the cell was Done before this submission. */
    void deliverCell(const Cell &cell, const Cell::Waiter &w,
                     bool cached);
    void finishJobIfDone(std::uint64_t jobId);
    void dropConn(Conn &conn);
    void sendError(Conn &conn, const std::string &msg);
    bool sendJson(Conn &conn, const JsonValue &v);

    // Result cache (poll thread).
    std::string resultPath(std::uint64_t key) const;
    bool loadCachedRecord(std::uint64_t key, std::string &record,
                          RunResult &result);
    void storeCachedRecord(std::uint64_t key, const std::string &record,
                           const RunResult &result);
    void scanResultCache();

    // Worker side.
    void workerRun(std::shared_ptr<Cell> cell);
    void wakePoll();

    ServerOptions opt_;
    State st_;
    std::atomic<bool> stopReq_{false};
    std::unique_ptr<SweepPool> pool_;
    int listenFd_ = -1;
    int wakeR_ = -1, wakeW_ = -1; ///< Self-pipe.
    std::uint64_t nextConnId_ = 1;
    std::uint64_t nextJobId_ = 1;
    std::unordered_map<std::uint64_t, Conn> conns_;
    /** Keys known to exist on disk from a previous lifetime. */
    std::unordered_map<std::uint64_t, bool> diskIndex_;
};

} // namespace smtp::serve

#endif // SMTP_SERVE_SERVER_HPP
