/**
 * @file
 * smtpd: the sweep-service daemon.
 *
 * One Server owns a listening UNIX socket, a pool of crash-isolated
 * worker *processes* (serve/worker.hpp), a single warm checkpoint farm
 * shared by every client, and an on-disk result cache that survives
 * restarts. Clients submit jobs — lists of sweep cells — and receive
 * results as a stream of frames, one per cell, as each completes.
 *
 * ## Dedup
 *
 * Cells are identified by serve::cellKey(): two clients submitting the
 * same cell (even in different jobs, even concurrently) share ONE
 * simulation, and both receive the identical record. A cell finished
 * in a previous daemon lifetime is served from the on-disk result
 * cache without simulating at all.
 *
 * ## Failure model (docs/service.md has the full statement)
 *
 * Simulations run in forked worker processes, so nothing a cell does —
 * assert, abort, OOM kill, wedge — can take the daemon down. A worker
 * that dies mid-cell is reaped and respawned; the cell is retried on a
 * capped-exponential backoff with jitter (the same RetryPolicy
 * machinery the simulated protocol uses for NAK pacing, interpreted in
 * milliseconds), and after maxAttempts total failures the cell is
 * *quarantined*: its waiters receive a structured failure record
 * instead of the daemon looping on a poison job. A per-cell deadline
 * (daemon default, overridable per job) bounds wedged simulations the
 * same way — the pool SIGKILLs the overdue worker and the failure
 * enters the same retry/quarantine path.
 *
 * Admission control bounds the queue: a job whose new cells would push
 * the backlog past maxQueuedCells first sheds strictly-lower-priority
 * queued cells (their waiters get failure frames) and, if that is not
 * enough, is rejected with an "overloaded" reply — explicit
 * backpressure, connection kept alive. Startup fsck moves truncated or
 * corrupt result-cache files to <state>/quarantine/ and recomputes
 * those cells on demand; cache writes are tmp+fsync+rename so a
 * crashing daemon never publishes a torn record.
 *
 * ## Threading
 *
 * One thread, one poll loop: accepts, client frames, worker pipes,
 * retry timers and deadlines all multiplex through poll(2). There is
 * no shared-memory concurrency left in the daemon (the old SweepPool
 * service mode is gone from this path); the only cross-thread entry
 * point is requestStop(), which is async-signal-safe via the
 * self-pipe. Client sockets are nonblocking with bounded per-conn
 * output buffers, so a slow-loris reader can stall only itself.
 *
 * ## Determinism
 *
 * Workers call the same serve::runOnce()/jsonRecord() the bench
 * binaries use, so a served record is byte-identical to a direct local
 * run's record modulo wall_ms — including records produced after
 * crash-retries, worker respawns, and cache fsck. docs/service.md
 * states the guarantee and its boundaries.
 */

#ifndef SMTP_SERVE_SERVER_HPP
#define SMTP_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "serve/json.hpp"
#include "serve/runner.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"

namespace smtp::serve
{

struct ServerOptions
{
    std::string socketPath; ///< UNIX socket to listen on (required).
    /**
     * State directory (required): ckpt/ holds the shared checkpoint
     * farm, results/ the restart-surviving record cache, traces/ the
     * per-cell trace artifacts for cells submitted with "trace", and
     * quarantine/ whatever startup fsck refused to trust.
     */
    std::string stateDir;
    unsigned jobs = 0;    ///< Worker processes; 0 = 2.
    bool verbose = false; ///< Per-cell stderr progress lines.
    /**
     * Default per-cell deadline in milliseconds (0 = none). A job may
     * tighten or set its own via the submit "deadline_ms" field. A
     * worker that outlives the deadline is SIGKILLed and the cell
     * enters the retry/quarantine path.
     */
    std::uint64_t deadlineMs = 0;
    /** Total attempts before a failing cell is quarantined (>= 1). */
    unsigned maxAttempts = 3;
    /**
     * Admission bound: maximum cells queued or awaiting retry. A
     * submit that would exceed it sheds lower-priority queued cells
     * first, then rejects with an "overloaded" reply.
     */
    std::size_t maxQueuedCells = 1024;
    /**
     * Retry pacing between attempts, reusing the fault-layer policy
     * grammar ("immediate" | "fixed[:base]" | "exp[:base[:cap]]") with
     * the numbers read as *milliseconds*. Default exp:100:5000.
     */
    fault::RetryPolicyConfig retry = defaultRetry();
    std::uint64_t retrySeed = 1; ///< Jitter stream seed.

    static fault::RetryPolicyConfig defaultRetry();
};

struct ServerStats
{
    std::uint64_t jobsAccepted = 0;
    std::uint64_t jobsCancelled = 0;
    std::uint64_t jobsRejected = 0;  ///< Overload: admission refused.
    std::uint64_t cellsSubmitted = 0;
    std::uint64_t cellsSimulated = 0;
    std::uint64_t cellsSkipped = 0;  ///< Abandoned before starting.
    std::uint64_t dedupHits = 0;     ///< Joined an in-flight/finished cell.
    std::uint64_t diskHits = 0;      ///< Served from the result cache.
    std::uint64_t cellsFailed = 0;   ///< Attempts that did not produce a record.
    std::uint64_t cellsRetried = 0;  ///< Failures that were rescheduled.
    std::uint64_t cellsQuarantined = 0; ///< Poison cells failed for good.
    std::uint64_t cellsShed = 0;     ///< Dropped by admission control.
    std::uint64_t workersCrashed = 0;
    std::uint64_t workersDeadlineKilled = 0;
    std::uint64_t workersCancelKilled = 0;
    std::uint64_t fsckQuarantined = 0; ///< Cache files fsck refused.
};

class Server
{
  public:
    explicit Server(ServerOptions opt);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, fsck + rehydrate the result cache, fork the worker pool,
     * and serve until shutdown (a "shutdown" request or requestStop(),
     * e.g. from a signal handler). Returns 0 on clean shutdown, 1 on
     * setup failure (error on stderr).
     */
    int run();

    /** Async-signal-safe stop request (writes the self-pipe). */
    void requestStop();

    const ServerStats &stats() const { return stats_; }

  private:
    enum class CellState : std::uint8_t
    {
        Queued,    ///< In the pending queue, waiting for a worker.
        Running,   ///< Dispatched to a worker process.
        RetryWait, ///< Failed; waiting out its retry backoff.
        Done,      ///< record is final (simulated, cached, or failed).
    };

    /** One deduplicated unit of simulation work. */
    struct Cell
    {
        std::uint64_t key = 0;
        RunConfig cfg;
        CellState state = CellState::Queued;
        int priority = 0;       ///< From the first submitting job.
        unsigned attempts = 0;  ///< Dispatches so far (1-based in wire).
        std::uint64_t deadlineMs = 0; ///< 0 = no deadline.
        bool abandoned = false; ///< No waiters left; skip if not started.
        bool fromCache = false; ///< Served from disk, not simulated here.
        bool failed = false;    ///< Done via quarantine, not a record.
        std::string record;     ///< jsonRecord() line — or, when failed,
                                ///< the structured failure record.
        RunResult result;       ///< Structured twin of record (success).
        std::string errReason;  ///< failed: "crash"/"deadline"/"error"/"shed".
        std::string errDetail;  ///< failed: human-readable specifics.
        std::chrono::steady_clock::time_point retryDue;
        /** (connection id, job id, index-in-job) still owed this cell. */
        struct Waiter
        {
            std::uint64_t conn;
            std::uint64_t job;
            std::size_t index;
        };
        std::vector<Waiter> waiters;
    };

    struct Job
    {
        std::uint64_t id = 0;
        std::uint64_t conn = 0;
        std::size_t cells = 0;
        std::size_t delivered = 0;
        std::size_t skipped = 0;
        std::size_t failed = 0; ///< Quarantined or shed cells.
        bool cancelled = false;
    };

    struct Conn
    {
        std::uint64_t id = 0;
        int fd = -1;
        FrameSplitter splitter;
        std::string outbuf; ///< Encoded frames awaiting POLLOUT.
        std::size_t outOff = 0;
        bool dead = false;
        bool writeFailed = false; ///< Skip the drop-time courtesy flush.
    };

    // Poll-thread only.
    bool setup(std::string *err);
    void acceptClients();
    void readClient(Conn &conn);
    void handleFrame(Conn &conn, const std::string &payload);
    void handleSubmit(Conn &conn, const JsonValue &req);
    void handleCancel(Conn &conn, const JsonValue &req);
    void handleStats(Conn &conn);
    void handleHealth(Conn &conn);
    /** @p cached: the cell was Done before this submission. */
    void deliverCell(const Cell &cell, const Cell::Waiter &w,
                     bool cached);
    void finishJobIfDone(std::uint64_t jobId);
    void dropConn(Conn &conn);
    void sendError(Conn &conn, const std::string &msg);
    bool sendJson(Conn &conn, const JsonValue &v);
    /** Drain as much of conn.outbuf as the socket accepts right now. */
    void flushConn(Conn &conn);

    // Scheduler (poll thread).
    void enqueueCell(std::uint64_t key, int priority);
    void dispatchPending();
    void promoteDueRetries(std::chrono::steady_clock::time_point now);
    int nextTimeoutMs() const;
    void onWorkerEvent(const WorkerEvent &ev);
    /** Fail @p cell for good and deliver failure frames to waiters. */
    void quarantineCell(Cell &cell, const std::string &reason,
                        const std::string &detail);
    /** Cells queued or awaiting retry (the admission-controlled set). */
    std::size_t backlogSize() const;
    /** Shed up to @p need queued cells with priority < @p below. */
    std::size_t shedBelow(int below, std::size_t need);

    // Result cache (poll thread).
    std::string resultPath(std::uint64_t key) const;
    bool loadCachedRecord(std::uint64_t key, std::string &record,
                          RunResult &result);
    void storeCachedRecord(std::uint64_t key, const std::string &record,
                           const RunResult &result);
    /** Rehydration + fsck: index good files, quarantine bad ones. */
    void scanResultCache();

    ServerOptions opt_;
    ServerStats stats_;
    std::atomic<bool> stopReq_{false};
    bool stopping_ = false;
    std::unique_ptr<WorkerPool> pool_;
    Rng rng_; ///< Retry-jitter stream (seeded; deterministic pacing).
    int listenFd_ = -1;
    int wakeR_ = -1, wakeW_ = -1; ///< Self-pipe.
    std::uint64_t nextConnId_ = 1;
    std::uint64_t nextJobId_ = 1;
    std::unordered_map<std::uint64_t, Conn> conns_;
    std::unordered_map<std::uint64_t, std::shared_ptr<Cell>> cells_;
    std::unordered_map<std::uint64_t, Job> jobs_;
    /** Queued cell keys, highest priority first, FIFO within one. */
    std::map<int, std::deque<std::uint64_t>, std::greater<int>> pending_;
    /** RetryWait cell keys ordered by due time. */
    std::multimap<std::chrono::steady_clock::time_point, std::uint64_t>
        retryQueue_;
    /** Keys known to exist on disk from a previous lifetime. */
    std::unordered_map<std::uint64_t, bool> diskIndex_;
};

} // namespace smtp::serve

#endif // SMTP_SERVE_SERVER_HPP
