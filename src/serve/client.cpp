#include "serve/client.hpp"

#include <unistd.h>

#include "serve/proto.hpp"
#include "serve/wire.hpp"

namespace smtp::serve
{

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Client::connect(const std::string &socketPath)
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    fd_ = connectSocket(socketPath, &err_);
    return fd_ >= 0;
}

bool
Client::sendReq(const JsonValue &req)
{
    if (fd_ < 0) {
        err_ = "not connected";
        return false;
    }
    return writeFrame(fd_, req.dump(), &err_);
}

bool
Client::readReply(JsonValue &out, const char *expectType)
{
    std::string payload;
    int r = readFrame(fd_, payload, &err_);
    if (r == 0) {
        err_ = "daemon closed the connection";
        return false;
    }
    if (r < 0)
        return false;
    if (!JsonValue::parse(payload, out, &err_))
        return false;
    std::string type = out.getString("type");
    if (type == "error") {
        err_ = "daemon: " + out.getString("message", "unknown error");
        return false;
    }
    if (expectType != nullptr && type != expectType) {
        err_ = "unexpected reply type '" + type + "'";
        return false;
    }
    return true;
}

bool
Client::ping()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("ping"));
    req.set("proto", JsonValue::makeNumber(kProtoVersion));
    if (!sendReq(req))
        return false;
    JsonValue reply;
    return readReply(reply, "pong");
}

bool
Client::stats(JsonValue &out)
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("stats"));
    req.set("proto", JsonValue::makeNumber(kProtoVersion));
    if (!sendReq(req))
        return false;
    return readReply(out, "stats");
}

bool
Client::health(JsonValue &out)
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("health"));
    req.set("proto", JsonValue::makeNumber(kProtoVersion));
    if (!sendReq(req))
        return false;
    return readReply(out, "health");
}

bool
Client::shutdown()
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("shutdown"));
    req.set("proto", JsonValue::makeNumber(kProtoVersion));
    if (!sendReq(req))
        return false;
    JsonValue reply;
    return readReply(reply, "shutting_down");
}

bool
Client::cancel(std::uint64_t jobId, std::size_t *outRemoved)
{
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("cancel"));
    req.set("proto", JsonValue::makeNumber(kProtoVersion));
    req.set("job", JsonValue::makeString(hex64(jobId)));
    if (!sendReq(req))
        return false;
    JsonValue reply;
    if (!readReply(reply, "cancelled"))
        return false;
    if (outRemoved != nullptr)
        *outRemoved =
            static_cast<std::size_t>(reply.getNumber("removed"));
    return true;
}

bool
Client::submit(const std::vector<RunConfig> &cells, int priority,
               const std::function<void(const CellReply &)> &onCell,
               std::size_t *outSkipped, std::size_t *outFailed,
               std::uint64_t deadlineMs)
{
    overloaded_ = false;
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("submit"));
    req.set("proto", JsonValue::makeNumber(kProtoVersion));
    req.set("priority", JsonValue::makeNumber(priority));
    if (deadlineMs != 0)
        req.set("deadline_ms", JsonValue::makeNumber(
                                   static_cast<double>(deadlineMs)));
    JsonValue arr = JsonValue::makeArray();
    for (const RunConfig &cfg : cells)
        arr.append(cellToJson(cfg));
    req.set("cells", std::move(arr));
    if (!sendReq(req))
        return false;

    JsonValue reply;
    if (!readReply(reply, nullptr))
        return false;
    if (reply.getString("type") == "overloaded") {
        // Explicit backpressure: the daemon refused the whole job but
        // kept the connection usable — report it distinctly so callers
        // can back off and retry instead of treating it as a bug.
        overloaded_ = true;
        err_ = "daemon overloaded: " +
               std::to_string(static_cast<std::size_t>(
                   reply.getNumber("queued"))) +
               " cell(s) queued against a limit of " +
               std::to_string(static_cast<std::size_t>(
                   reply.getNumber("limit")));
        return false;
    }
    if (reply.getString("type") != "accepted") {
        err_ = "unexpected reply type '" + reply.getString("type") +
               "'";
        return false;
    }
    if (static_cast<std::size_t>(reply.getNumber("cells")) !=
        cells.size()) {
        err_ = "daemon accepted a different cell count";
        return false;
    }

    // Pump the stream: N "cell" frames (any order) then one "done".
    while (true) {
        if (!readReply(reply, nullptr))
            return false;
        std::string type = reply.getString("type");
        if (type == "cell") {
            CellReply cr;
            cr.index =
                static_cast<std::size_t>(reply.getNumber("index"));
            parseHex64(reply.getString("key"), cr.key);
            cr.cached = reply.getBool("cached");
            cr.record = reply.getString("record");
            cr.failed = reply.getBool("failed");
            if (cr.failed) {
                cr.errReason = reply.getString("error");
                cr.errDetail = reply.getString("detail");
                cr.attempts = static_cast<unsigned>(
                    reply.getNumber("attempts"));
            } else if (const JsonValue *res = reply.find("result")) {
                cr.result = resultFromJson(*res);
            }
            cr.traceStem = reply.getString("trace_stem");
            if (cr.index >= cells.size()) {
                err_ = "daemon sent an out-of-range cell index";
                return false;
            }
            if (onCell)
                onCell(cr);
            continue;
        }
        if (type == "done") {
            std::size_t skipped =
                static_cast<std::size_t>(reply.getNumber("skipped"));
            std::size_t failed =
                static_cast<std::size_t>(reply.getNumber("failed"));
            if (outSkipped != nullptr)
                *outSkipped = skipped;
            if (outFailed != nullptr)
                *outFailed = failed;
            if (skipped != 0 || failed != 0) {
                err_ = "daemon ";
                if (failed != 0)
                    err_ += "failed " + std::to_string(failed) +
                            " cell(s)";
                if (skipped != 0) {
                    if (failed != 0)
                        err_ += " and ";
                    err_ += "skipped " + std::to_string(skipped) +
                            " cell(s)";
                }
                return false;
            }
            return true;
        }
        err_ = "unexpected frame type '" + type + "' in submit stream";
        return false;
    }
}

} // namespace smtp::serve
