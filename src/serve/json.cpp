#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace smtp::serve
{

namespace
{

/** Deep nesting is an attack, not a use case, on this protocol. */
constexpr int kMaxDepth = 32;

struct Parser
{
    const char *p;
    const char *end;
    std::string *err;

    bool
    fail(const std::string &msg)
    {
        if (err != nullptr)
            *err = msg;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (static_cast<std::size_t>(end - p) < n ||
            std::memcmp(p, word, n) != 0)
            return false;
        p += n;
        return true;
    }

    bool
    parseHex4(unsigned &out)
    {
        if (end - p < 4)
            return false;
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = *p++;
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return false;
        }
        return true;
    }

    void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            s.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
            s.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            s.push_back(static_cast<char>(0xf0 | (cp >> 18)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < end) {
            unsigned char c = static_cast<unsigned char>(*p);
            if (c == '"') {
                ++p;
                return true;
            }
            if (c == '\\') {
                ++p;
                if (p >= end)
                    return fail("truncated escape");
                char e = *p++;
                switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    unsigned cp;
                    if (!parseHex4(cp))
                        return fail("bad \\u escape");
                    if (cp >= 0xd800 && cp < 0xdc00) {
                        // Surrogate pair.
                        if (end - p < 6 || p[0] != '\\' || p[1] != 'u')
                            return fail("unpaired surrogate");
                        p += 2;
                        unsigned lo;
                        if (!parseHex4(lo) || lo < 0xdc00 || lo > 0xdfff)
                            return fail("bad low surrogate");
                        cp = 0x10000 + ((cp - 0xd800) << 10) +
                             (lo - 0xdc00);
                    } else if (cp >= 0xdc00 && cp < 0xe000) {
                        return fail("stray low surrogate");
                    }
                    appendUtf8(out, cp);
                    break;
                }
                default:
                    return fail("unknown escape");
                }
                continue;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            out.push_back(static_cast<char>(c));
            ++p;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(double &out)
    {
        // Validate the JSON grammar by hand, then let strtod convert:
        // strtod alone accepts hex, inf and leading '+', none of which
        // are JSON.
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        if (p >= end || *p < '0' || *p > '9')
            return fail("malformed number");
        if (*p == '0') {
            ++p;
        } else {
            while (p < end && *p >= '0' && *p <= '9')
                ++p;
        }
        if (p < end && *p == '.') {
            ++p;
            if (p >= end || *p < '0' || *p > '9')
                return fail("malformed fraction");
            while (p < end && *p >= '0' && *p <= '9')
                ++p;
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
            ++p;
            if (p < end && (*p == '+' || *p == '-'))
                ++p;
            if (p >= end || *p < '0' || *p > '9')
                return fail("malformed exponent");
            while (p < end && *p >= '0' && *p <= '9')
                ++p;
        }
        std::string buf(start, p);
        char *conv_end = nullptr;
        out = std::strtod(buf.c_str(), &conv_end);
        if (conv_end != buf.c_str() + buf.size())
            return fail("number conversion failed");
        if (std::isinf(out))
            return fail("number out of range");
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
        case '{': {
            ++p;
            out = JsonValue::makeObject();
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.set(std::move(key), std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        case '[': {
            ++p;
            out = JsonValue::makeArray();
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.append(std::move(v));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue::makeString(std::move(s));
            return true;
        }
        case 't':
            if (!literal("true"))
                return fail("bad literal");
            out = JsonValue::makeBool(true);
            return true;
        case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out = JsonValue::makeBool(false);
            return true;
        case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out = JsonValue::makeNull();
            return true;
        default: {
            double d;
            if (!parseNumber(d))
                return false;
            out = JsonValue::makeNumber(d);
            return true;
        }
        }
    }
};

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
JsonValue::getString(std::string_view key, const std::string &dflt) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isString() ? v->str() : dflt;
}

double
JsonValue::getNumber(std::string_view key, double dflt) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isNumber() ? v->number() : dflt;
}

bool
JsonValue::getBool(std::string_view key, bool dflt) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isBool() ? v->boolean() : dflt;
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double d)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.num_ = d;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.type_ = Type::Array;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.type_ = Type::Object;
    return v;
}

void
JsonValue::append(JsonValue v)
{
    arr_.push_back(std::move(v));
}

void
JsonValue::set(std::string key, JsonValue v)
{
    for (auto &[k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    obj_.emplace_back(std::move(key), std::move(v));
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    return out;
}

std::string
JsonValue::dump() const
{
    switch (type_) {
    case Type::Null:
        return "null";
    case Type::Bool:
        return bool_ ? "true" : "false";
    case Type::Number: {
        char buf[32];
        // %.17g round-trips every double exactly through strtod.
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        return buf;
    }
    case Type::String:
        return "\"" + jsonEscape(str_) + "\"";
    case Type::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i != 0)
                out += ",";
            out += arr_[i].dump();
        }
        out += "]";
        return out;
    }
    case Type::Object: {
        std::string out = "{";
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i != 0)
                out += ",";
            out += "\"" + jsonEscape(obj_[i].first) +
                   "\":" + obj_[i].second.dump();
        }
        out += "}";
        return out;
    }
    }
    return "null";
}

bool
JsonValue::parse(std::string_view text, JsonValue &out, std::string *err)
{
    Parser ps{text.data(), text.data() + text.size(), err};
    if (!ps.parseValue(out, 0))
        return false;
    ps.skipWs();
    if (ps.p != ps.end)
        return ps.fail("trailing garbage after JSON value");
    return true;
}

} // namespace smtp::serve
