#include "serve/proto.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace smtp::serve
{

namespace
{

bool
failParse(std::string *err, const std::string &msg)
{
    if (err != nullptr)
        *err = msg;
    return false;
}

/**
 * Fetch a non-negative integral member. Numbers arrive as doubles;
 * anything fractional, negative, or beyond 2^53 is rejected rather
 * than truncated.
 */
bool
getUint(const JsonValue &obj, const char *key, std::uint64_t &out,
        std::string *err)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return true; // Absent: keep the default.
    if (!v->isNumber())
        return failParse(err, std::string("field '") + key +
                                  "' must be a number");
    double d = v->number();
    if (d < 0 || d != std::floor(d) || d > 9007199254740992.0)
        return failParse(err, std::string("field '") + key +
                                  "' must be a non-negative integer");
    out = static_cast<std::uint64_t>(d);
    return true;
}

bool
getBoolStrict(const JsonValue &obj, const char *key, bool &out,
              std::string *err)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return true;
    if (!v->isBool())
        return failParse(err, std::string("field '") + key +
                                  "' must be a boolean");
    out = v->boolean();
    return true;
}

bool
getStringStrict(const JsonValue &obj, const char *key, std::string &out,
                std::string *err)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr)
        return true;
    if (!v->isString())
        return failParse(err, std::string("field '") + key +
                                  "' must be a string");
    out = v->str();
    return true;
}

} // namespace

std::string
jsonFailureRecord(const RunConfig &cfg, const std::string &reason,
                  const std::string &detail, unsigned attempts)
{
    JsonValue v = JsonValue::makeObject();
    v.set("app", JsonValue::makeString(cfg.app));
    v.set("model",
          JsonValue::makeString(std::string(modelName(cfg.model))));
    v.set("nodes",
          JsonValue::makeNumber(static_cast<double>(cfg.nodes)));
    v.set("ways", JsonValue::makeNumber(static_cast<double>(cfg.ways)));
    v.set("failed", JsonValue::makeBool(true));
    v.set("error", JsonValue::makeString(reason));
    v.set("detail", JsonValue::makeString(detail));
    v.set("attempts",
          JsonValue::makeNumber(static_cast<double>(attempts)));
    v.set("exec", JsonValue::makeString(cfg.exec.toString()));
    return v.dump();
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
parseHex64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s.size() > 16)
        return false;
    out = 0;
    for (char c : s) {
        out <<= 4;
        if (c >= '0' && c <= '9')
            out |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            out |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            out |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return false;
    }
    return true;
}

JsonValue
resultToJson(const RunResult &r)
{
    JsonValue v = JsonValue::makeObject();
    auto num = [](double d) { return JsonValue::makeNumber(d); };
    auto u64 = [&num](std::uint64_t x) {
        return num(static_cast<double>(x));
    };
    v.set("exec_ticks", u64(r.execTime));
    v.set("mem_stall", num(r.memStallFraction));
    v.set("peak_proto_occ", num(r.peakProtocolOccupancy));
    v.set("proto_br_mis", num(r.protoBranchMispredict));
    v.set("proto_squash_pct", num(r.protoSquashCyclePct));
    v.set("proto_retired_pct", num(r.protoRetiredPct));
    v.set("peak_branch_stack", u64(r.peakBranchStack));
    v.set("peak_int_regs", u64(r.peakIntRegs));
    v.set("peak_int_queue", u64(r.peakIntQueue));
    v.set("peak_lsq", u64(r.peakLsq));
    v.set("faults_injected", u64(r.faultsInjected));
    v.set("faults_recovered", u64(r.faultsRecovered));
    v.set("sampled", JsonValue::makeBool(r.sampled));
    v.set("samples", num(r.sampleCount));
    v.set("ipc_mean", num(r.ipcMean));
    v.set("ipc_ci95", num(r.ipcCi95));
    v.set("memstall_mean", num(r.memStallMean));
    v.set("memstall_ci95", num(r.memStallCi95));
    v.set("ckpt", num(r.ckpt));
    v.set("exec_serialized", JsonValue::makeBool(r.execSerialized));
    // Protocol-variant statistics travel only when any are non-zero so
    // default-protocol result payloads keep their pre-variant shape.
    if (r.migDetected || r.migSaved || r.migReverts || r.naks ||
        r.invalsSent || r.phaseFloorTrips ||
        r.reqQueueDelayMeanNs != 0.0) {
        v.set("mig_detected", u64(r.migDetected));
        v.set("mig_upgrades_saved", u64(r.migSaved));
        v.set("mig_reverts", u64(r.migReverts));
        v.set("naks", u64(r.naks));
        v.set("invals", u64(r.invalsSent));
        v.set("floor_trips", u64(r.phaseFloorTrips));
        v.set("req_qdelay_mean_ns", num(r.reqQueueDelayMeanNs));
        v.set("req_qdelay_p95_ns", num(r.reqQueueDelayP95Ns));
    }
    v.set("wall_ms", num(r.wallMs));
    return v;
}

RunResult
resultFromJson(const JsonValue &v)
{
    RunResult r;
    auto u64 = [&v](const char *key, std::uint64_t dflt) {
        double d = v.getNumber(key, static_cast<double>(dflt));
        return d < 0 ? dflt : static_cast<std::uint64_t>(d);
    };
    r.execTime = u64("exec_ticks", r.execTime);
    r.memStallFraction = v.getNumber("mem_stall");
    r.peakProtocolOccupancy = v.getNumber("peak_proto_occ");
    r.protoBranchMispredict = v.getNumber("proto_br_mis");
    r.protoSquashCyclePct = v.getNumber("proto_squash_pct");
    r.protoRetiredPct = v.getNumber("proto_retired_pct");
    r.peakBranchStack = u64("peak_branch_stack", 0);
    r.peakIntRegs = u64("peak_int_regs", 0);
    r.peakIntQueue = u64("peak_int_queue", 0);
    r.peakLsq = u64("peak_lsq", 0);
    r.faultsInjected = u64("faults_injected", 0);
    r.faultsRecovered = u64("faults_recovered", 0);
    r.sampled = v.getBool("sampled");
    r.sampleCount = static_cast<unsigned>(v.getNumber("samples"));
    r.ipcMean = v.getNumber("ipc_mean");
    r.ipcCi95 = v.getNumber("ipc_ci95");
    r.memStallMean = v.getNumber("memstall_mean");
    r.memStallCi95 = v.getNumber("memstall_ci95");
    r.ckpt = static_cast<int>(v.getNumber("ckpt", -1));
    r.execSerialized = v.getBool("exec_serialized");
    r.migDetected = u64("mig_detected", 0);
    r.migSaved = u64("mig_upgrades_saved", 0);
    r.migReverts = u64("mig_reverts", 0);
    r.naks = u64("naks", 0);
    r.invalsSent = u64("invals", 0);
    r.phaseFloorTrips = u64("floor_trips", 0);
    r.reqQueueDelayMeanNs = v.getNumber("req_qdelay_mean_ns");
    r.reqQueueDelayP95Ns = v.getNumber("req_qdelay_p95_ns");
    r.wallMs = v.getNumber("wall_ms");
    return r;
}

JsonValue
cellToJson(const RunConfig &cfg)
{
    JsonValue cell = JsonValue::makeObject();
    cell.set("model",
             JsonValue::makeString(std::string(modelName(cfg.model))));
    // Non-default protocols travel explicitly; absence means bitvector
    // so pre-variant clients and daemons interoperate unchanged.
    if (cfg.protocol != proto::ProtocolKind::Bitvector) {
        cell.set("protocol",
                 JsonValue::makeString(
                     std::string(proto::protocolName(cfg.protocol))));
    }
    cell.set("nodes", JsonValue::makeNumber(cfg.nodes));
    cell.set("ways", JsonValue::makeNumber(cfg.ways));
    cell.set("app", JsonValue::makeString(cfg.app));
    cell.set("scale", JsonValue::makeNumber(cfg.scale));
    cell.set("cpu_mhz",
             JsonValue::makeNumber(static_cast<double>(cfg.cpuFreqMHz)));
    cell.set("las", JsonValue::makeBool(cfg.lookAheadScheduling));
    cell.set("bitops", JsonValue::makeBool(cfg.bitAssistOps));
    cell.set("pcache", JsonValue::makeBool(cfg.perfectProtocolCaches));
    cell.set("dir_cache_divisor",
             JsonValue::makeNumber(cfg.dirCacheDivisor));
    cell.set("heap_kernel", JsonValue::makeBool(cfg.heapEventKernel));
    cell.set("exec", JsonValue::makeString(cfg.exec.toString()));
    cell.set("check",
             JsonValue::makeString(checkLevelName(cfg.checkLevel)));
    if (cfg.sample.active()) {
        cell.set("sample",
                 JsonValue::makeString(
                     std::to_string(cfg.sample.warmup) + ":" +
                     std::to_string(cfg.sample.interval) + ":" +
                     std::to_string(cfg.sample.count)));
    }
    if (cfg.faults.enabled())
        cell.set("faults", JsonValue::makeString(cfg.faults.toString()));
    cell.set("retry", JsonValue::makeString(
                          fault::retryPolicyToString(cfg.retryPolicy)));
    if (!cfg.traceStem.empty())
        cell.set("trace", JsonValue::makeBool(true));
    if (cfg.traceExec)
        cell.set("trace_exec", JsonValue::makeBool(true));
    return cell;
}

bool
cellFromJson(const JsonValue &cell, RunConfig &out, std::string *err)
{
    if (!cell.isObject())
        return failParse(err, "cell must be a JSON object");
    static const char *const kKnown[] = {
        "model", "protocol", "nodes", "ways", "app", "scale", "cpu_mhz",
        "las", "bitops", "pcache", "dir_cache_divisor", "heap_kernel",
        "exec", "check", "sample", "faults", "retry", "trace",
        "trace_exec",
        "ckpt_dir", // Accepted and ignored: the daemon owns the farm.
    };
    for (const auto &[key, value] : cell.members()) {
        bool known = false;
        for (const char *k : kKnown)
            known = known || key == k;
        if (!known)
            return failParse(err, "unknown cell field '" + key + "'");
    }

    out = RunConfig{};
    std::string model;
    if (!getStringStrict(cell, "model", model, err))
        return false;
    if (!model.empty() && !modelFromName(model, out.model))
        return failParse(err, "unknown machine model '" + model + "'");
    std::string protocol;
    if (!getStringStrict(cell, "protocol", protocol, err))
        return false;
    if (!proto::protocolFromName(protocol, out.protocol)) {
        return failParse(err, "unknown protocol '" + protocol +
                                  "' (expected " +
                                  std::string(proto::protocolNameList()) +
                                  ")");
    }

    std::uint64_t u;
    u = out.nodes;
    if (!getUint(cell, "nodes", u, err))
        return false;
    if (u == 0 || u > 4096)
        return failParse(err, "nodes out of range");
    out.nodes = static_cast<unsigned>(u);
    u = out.ways;
    if (!getUint(cell, "ways", u, err))
        return false;
    if (u == 0 || u > 64)
        return failParse(err, "ways out of range");
    out.ways = static_cast<unsigned>(u);

    if (!getStringStrict(cell, "app", out.app, err))
        return false;
    const JsonValue *scale = cell.find("scale");
    if (scale != nullptr) {
        if (!scale->isNumber() || scale->number() <= 0)
            return failParse(err, "scale must be a positive number");
        out.scale = scale->number();
    }
    u = out.cpuFreqMHz;
    if (!getUint(cell, "cpu_mhz", u, err))
        return false;
    if (u == 0)
        return failParse(err, "cpu_mhz must be positive");
    out.cpuFreqMHz = u;
    if (!getBoolStrict(cell, "las", out.lookAheadScheduling, err) ||
        !getBoolStrict(cell, "bitops", out.bitAssistOps, err) ||
        !getBoolStrict(cell, "pcache", out.perfectProtocolCaches, err) ||
        !getBoolStrict(cell, "heap_kernel", out.heapEventKernel, err) ||
        !getBoolStrict(cell, "trace_exec", out.traceExec, err))
        return false;
    u = out.dirCacheDivisor;
    if (!getUint(cell, "dir_cache_divisor", u, err))
        return false;
    if (u == 0 || u > 65536)
        return failParse(err, "dir_cache_divisor out of range");
    out.dirCacheDivisor = static_cast<unsigned>(u);

    std::string spec;
    spec.clear();
    if (!getStringStrict(cell, "exec", spec, err))
        return false;
    if (!spec.empty() && !ExecParams::parse(spec, out.exec, err))
        return false;
    spec.clear();
    if (!getStringStrict(cell, "check", spec, err))
        return false;
    if (!spec.empty() && !parseCheckLevel(spec, out.checkLevel, err))
        return false;
    spec.clear();
    if (!getStringStrict(cell, "sample", spec, err))
        return false;
    if (!spec.empty() && !SampleSpec::parse(spec, out.sample, err))
        return false;
    spec.clear();
    if (!getStringStrict(cell, "faults", spec, err))
        return false;
    if (!spec.empty() && !fault::FaultPlan::parse(spec, out.faults, err))
        return false;
    spec.clear();
    if (!getStringStrict(cell, "retry", spec, err))
        return false;
    if (!spec.empty() &&
        !fault::parseRetryPolicy(spec, out.retryPolicy, err))
        return false;

    // "trace" is a request flag: the daemon assigns the stem under its
    // own state dir, so the client never names server-side paths.
    bool wantTrace = false;
    if (!getBoolStrict(cell, "trace", wantTrace, err))
        return false;
    if (wantTrace)
        out.traceStem = "?"; // Placeholder; server substitutes.
    return true;
}

} // namespace smtp::serve
