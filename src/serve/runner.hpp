/**
 * @file
 * The shared sweep-cell runner: one full-system simulation per
 * (application, machine model, size) cell, with checkpoint-library
 * integration and sampled measurement.
 *
 * Both front ends run cells through this exact code path — the bench
 * binaries inline (bench/bench_util) and the smtpd daemon on behalf of
 * remote clients (serve/server) — which is what makes the daemon's
 * determinism guarantee cheap to state: a served result is the same
 * RunResult the client's own process would have computed, serialized
 * by the same jsonRecord(), so records are byte-identical mod wall_ms.
 */

#ifndef SMTP_SERVE_RUNNER_HPP
#define SMTP_SERVE_RUNNER_HPP

#include <cstdio>
#include <string>

#include "machine/machine.hpp"

namespace smtp::serve
{

/**
 * Sampled-measurement spec (--sample=W:M:K, all in CPU cycles except
 * K): skip W cycles of warmup, then take K measurement intervals of M
 * cycles each and report per-metric mean and 95% confidence interval
 * (Student's t) instead of running the workload to completion. With a
 * checkpoint library attached, the warmup snapshot is cached under the
 * cell's config hash, so every variant sharing the warmup prefix
 * simulates it once.
 */
struct SampleSpec
{
    Cycles warmup = 0;   ///< W: warmup length in CPU cycles.
    Cycles interval = 0; ///< M: one measurement interval, CPU cycles.
    unsigned count = 0;  ///< K: number of intervals.

    bool active() const { return interval > 0 && count > 0; }

    /** Parse "W:M:K". False (with *err) on malformed input. */
    static bool parse(const std::string &spec, SampleSpec &out,
                      std::string *err = nullptr);
};

struct RunConfig
{
    MachineModel model = MachineModel::SMTp;
    /**
     * Directory-protocol variant (--protocol=NAME). The default
     * bitvector protocol leaves every record, config hash and cache
     * key byte-identical to a build without the variant subsystem.
     */
    proto::ProtocolKind protocol = proto::ProtocolKind::Bitvector;
    unsigned nodes = 1;
    unsigned ways = 1;
    std::string app = "FFT";
    double scale = 1.0;
    std::uint64_t cpuFreqMHz = 2000;
    bool lookAheadScheduling = true;
    bool bitAssistOps = true;
    bool perfectProtocolCaches = false;
    unsigned dirCacheDivisor = 16; ///< Scaled with the problem sizes.
    /** Run on the reference heap kernel (determinism A/B tests). */
    bool heapEventKernel = false;
    /**
     * Shard-engine execution mode (--exec=serial|parallel[:T]).
     * Simulated results are bit-identical across modes; parallel only
     * changes host wall time (docs/parallelism.md).
     */
    ExecParams exec;
    /**
     * Coherence checker level (--check=off|asserts|full). Asserts runs
     * under the parallel engine; FullMirror forces one host thread,
     * loudly (RunResult::execSerialized). Checked cells bypass the
     * checkpoint library: restore requires checkLevel Off, and a
     * checked run's point is to observe every transition itself.
     */
    check::CheckLevel checkLevel = check::CheckLevel::Off;
    /**
     * When non-empty, run with telemetry enabled and write
     * stem.smtptrace / stem.json / stem.csv after the run. Tracing
     * never perturbs simulated timing.
     */
    std::string traceStem;
    /**
     * Also record the opt-in Exec category (--trace-exec): per-shard
     * window-advance and barrier-wait events. These carry host time,
     * so exec-traced exports are NOT byte-comparable across exec modes
     * (docs/parallelism.md).
     */
    bool traceExec = false;
    /**
     * Fault injection (--faults=PLAN) and NAK retry policy
     * (--retry=SPEC). A disabled plan and the default Fixed policy
     * leave every cell bit-identical to a build without src/fault.
     */
    fault::FaultPlan faults;
    fault::RetryPolicyConfig retryPolicy;
    /**
     * Checkpoint library directory (--ckpt-dir=DIR; empty = off).
     * Full runs cache their end state; sampled runs cache the warmup
     * snapshot. Keys include the machine config hash, so a stale or
     * foreign snapshot is rejected and re-simulated, never trusted.
     */
    std::string ckptDir;
    SampleSpec sample; ///< Inactive = run to completion (default).
};

struct RunResult
{
    Tick execTime = 0;
    /** Committed app instructions (in-process runs only; not on the
     *  wire — derived metrics like IPC use it with execTime). */
    std::uint64_t committedInsts = 0;
    double memStallFraction = 0.0;
    double peakProtocolOccupancy = 0.0;
    // SMTp-only protocol thread characteristics.
    double protoBranchMispredict = 0.0;
    double protoSquashCyclePct = 0.0;
    double protoRetiredPct = 0.0;
    // Protocol thread peak resource occupancy (Table 9).
    std::uint64_t peakBranchStack = 0;
    std::uint64_t peakIntRegs = 0;
    std::uint64_t peakIntQueue = 0;
    std::uint64_t peakLsq = 0;
    // Fault-injection outcome (zero unless a plan was enabled).
    std::uint64_t faultsInjected = 0;
    std::uint64_t faultsRecovered = 0;
    // Sampled-measurement statistics (populated when sample.active()).
    bool sampled = false;
    unsigned sampleCount = 0;     ///< Intervals actually measured.
    double ipcMean = 0.0;         ///< Machine IPC per interval, mean.
    double ipcCi95 = 0.0;         ///< 95% CI half-width (Student's t).
    double memStallMean = 0.0;    ///< Per-interval mem-stall fraction.
    double memStallCi95 = 0.0;
    // Server-workload statistics (populated only when the app is one
    // of the server family; see workload::ServerStats).
    bool server = false;
    std::uint64_t requests = 0;
    double reqLatMeanUs = 0.0; ///< Request latency, microseconds.
    double reqLatP50Us = 0.0;
    double reqLatP95Us = 0.0;
    double reqLatP99Us = 0.0;
    std::uint64_t txnCommits = 0;
    std::uint64_t txnAborts = 0;
    std::uint64_t txnFallbacks = 0;
    // Protocol-variant statistics (populated only when the cell runs a
    // non-default protocol, so default records stay byte-identical).
    std::uint64_t migDetected = 0;  ///< Migratory lines predicted.
    std::uint64_t migSaved = 0;     ///< Upgrade round-trips avoided.
    std::uint64_t migReverts = 0;   ///< False predictions reverted.
    std::uint64_t naks = 0;          ///< NAKs sent, summed over nodes.
    std::uint64_t invalsSent = 0;    ///< FwdInval messages sent.
    std::uint64_t phaseFloorTrips = 0; ///< Starvation-floor force-serves.
    double reqQueueDelayMeanNs = 0.0;  ///< Directory queueing delay.
    double reqQueueDelayP95Ns = 0.0;
    // Checkpoint-library outcome: -1 = library off, 0 = miss, 1 = hit.
    int ckpt = -1;
    /** A parallel exec request was serialized by the FullMirror checker. */
    bool execSerialized = false;
    // Harness measurement (host time; not simulated state).
    double wallMs = 0.0;
};

/** "off" / "asserts" / "full" (the --check= vocabulary). */
const char *checkLevelName(check::CheckLevel lv);

/** Parse the --check= vocabulary. False (with *err) on junk. */
bool parseCheckLevel(const std::string &s, check::CheckLevel &out,
                     std::string *err = nullptr);

/** MachineParams for one cell (the machine-facing half of RunConfig). */
MachineParams paramsFor(const RunConfig &cfg);

/**
 * Cell identity: the machine config hash (model, sizes, fault plan,
 * ...) mixed with everything that shapes the produced record but lives
 * outside MachineParams — workload, trace flags, checker level, and
 * the sample spec. Computable from the config alone (no machine
 * build), so the daemon dedups jobs before paying for construction.
 * Two configs with equal cellKey() produce byte-identical jsonRecord()
 * output mod wall_ms.
 */
std::uint64_t cellKey(const RunConfig &cfg);

/** Run one full-system simulation. */
RunResult runOnce(const RunConfig &cfg);

/**
 * The canonical JSON-Lines record for one cell. Every producer (bench
 * --json, the daemon's result stream) uses this one serializer, so
 * "byte-identical mod wall_ms" is a property of the string, not of
 * who computed it.
 */
std::string jsonRecord(const RunConfig &cfg, const RunResult &r);

/** fprintf(jsonRecord(...)) with a trailing newline. */
void appendJsonRecord(std::FILE *f, const RunConfig &cfg,
                      const RunResult &r);

} // namespace smtp::serve

#endif // SMTP_SERVE_RUNNER_HPP
