/**
 * @file
 * Crash-isolated worker processes for smtpd.
 *
 * Every sweep cell the daemon runs executes in a sandboxed worker
 * *process*, forked from the daemon and spoken to over a socketpair
 * using the same length-prefixed frames as the client wire (wire.hpp).
 * A crashing simulation (assert, OOM kill, stray abort) takes down
 * only its worker: the poll thread sees EOF on the worker's pipe,
 * reaps the corpse with waitpid, forks a replacement, and the warm
 * checkpoint farm, result cache, and every other job live on. A
 * *wedged* simulation is bounded the same way — each dispatch may
 * carry a deadline, and the pool SIGKILLs any worker that outlives
 * its deadline.
 *
 * The pool is poll-thread-only: it owns no threads and takes no locks.
 * The daemon folds the worker fds into its poll set, calls service()
 * after each wakeup to collect completions/crashes/deadline kills, and
 * dispatch()es queued cells onto idle workers. Retry pacing, attempt
 * counting, and quarantine policy belong to the caller (server.cpp);
 * the pool only reports what happened to each dispatch.
 *
 * Worker children inherit the daemon's environment, which is how the
 * chaos hooks work: SMTPD_CHAOS_ABORT_APP / SMTPD_CHAOS_WEDGE_APP make
 * a worker abort (or sleep forever) when it receives a matching cell,
 * letting tools/serve_chaos and the tests exercise the crash-recovery
 * and deadline-kill paths deterministically (docs/service.md).
 */

#ifndef SMTP_SERVE_WORKER_HPP
#define SMTP_SERVE_WORKER_HPP

#include <cstdint>
#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "serve/wire.hpp"

namespace smtp::serve
{

/** What became of one dispatched cell attempt. */
struct WorkerEvent
{
    enum class Kind : std::uint8_t
    {
        Done,           ///< Worker returned a record.
        Failed,         ///< Worker returned a clean structured error.
        Crashed,        ///< Worker process died mid-cell.
        DeadlineKilled, ///< Pool SIGKILLed an overdue worker.
    };
    Kind kind = Kind::Done;
    std::uint64_t key = 0;   ///< Cell key from the dispatch.
    unsigned attempt = 0;    ///< Attempt number from the dispatch.
    std::string record;      ///< Done: verbatim jsonRecord() line.
    std::string resultJson;  ///< Done: resultToJson(...).dump().
    std::string error;       ///< Failed/Crashed/DeadlineKilled: detail.
};

class WorkerPool
{
  public:
    /**
     * @p workers    process count (>= 1).
     * @p verbose    per-worker stderr lines.
     * @p closeInChild runs in every freshly forked child before its
     *   serve loop: the owner closes fds the child must not inherit
     *   (listening socket, client connections, self-pipe). The pool
     *   itself closes the other workers' pipe ends.
     */
    WorkerPool(unsigned workers, bool verbose,
               std::function<void()> closeInChild);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Fork the initial workers. False with *err if none could start. */
    bool start(std::string *err);

    unsigned workers() const { return static_cast<unsigned>(slots_.size()); }
    unsigned busy() const;
    unsigned idle() const { return workers() - busy(); }
    /** Workers reaped and respawned over the pool's lifetime. */
    std::uint64_t reaped() const { return reaped_; }
    /** Live worker pids (health reporting / chaos harness). */
    std::vector<int> pids() const;

    /** Parent-side pipe fds to fold into the owner's poll set. */
    std::vector<int> pollFds() const;

    /**
     * Hand one cell attempt to an idle worker. @p requestJson is the
     * full request frame payload; @p deadline, when non-zero, is the
     * host time after which service() SIGKILLs the worker. False if
     * no worker is idle (caller keeps the cell queued).
     */
    bool dispatch(std::uint64_t key, unsigned attempt,
                  const std::string &requestJson,
                  std::chrono::steady_clock::time_point deadline);

    /**
     * Collect everything that happened since the last call: read
     * worker pipes (completions and clean failures), detect crashed
     * workers (EOF while busy), SIGKILL overdue ones, reap corpses,
     * and fork replacements. Call after every poll wakeup.
     */
    void service(std::vector<WorkerEvent> &events);

    /**
     * Cancellation: if some worker is running @p key, SIGKILL it,
     * reap it, fork a replacement, and return true. Emits no event —
     * the caller decided the cell's fate already.
     */
    bool killCell(std::uint64_t key);

    /**
     * Milliseconds until the earliest busy-worker deadline (rounded
     * up), or -1 when no deadline is pending. Poll-timeout input.
     */
    int nextDeadlineMs(std::chrono::steady_clock::time_point now) const;

  private:
    struct Slot
    {
        pid_t pid = -1;
        int fd = -1; ///< Parent side of the socketpair (nonblocking).
        FrameSplitter splitter;
        bool busy = false;
        std::uint64_t key = 0;
        unsigned attempt = 0;
        /** time_point::max() = no deadline for this dispatch. */
        std::chrono::steady_clock::time_point deadline;
    };

    bool spawn(Slot &slot, std::string *err);
    /** Kill (if alive), reap, and close @p slot; does not respawn. */
    void retire(Slot &slot, bool kill);
    void readSlot(Slot &slot, std::vector<WorkerEvent> &events);

    std::vector<Slot> slots_;
    bool verbose_;
    std::function<void()> closeInChild_;
    std::uint64_t reaped_ = 0;
};

/**
 * The worker child's serve loop: read a run request frame from @p fd,
 * simulate, write the reply, repeat until EOF, then _exit(0). Runs the
 * chaos hooks (SMTPD_CHAOS_ABORT_APP / SMTPD_CHAOS_WEDGE_APP) before
 * each simulation. Never returns.
 */
[[noreturn]] void workerChildMain(int fd);

} // namespace smtp::serve

#endif // SMTP_SERVE_WORKER_HPP
