/**
 * @file
 * Node-local protocol data store.
 *
 * The architectural contents of the protocol data space: directory
 * entries, the pending-transaction table and handler scratch state. The
 * cache hierarchy provides the *timing* for accesses to these addresses;
 * the values live here and are read/written by the functional handler
 * executor. Sparse, byte-addressable in 4- or 8-byte quantities,
 * zero-initialised (a zero directory entry is Unowned — exactly the
 * reset state of a real directory memory).
 */

#ifndef SMTP_MEM_PROTOCOL_RAM_HPP
#define SMTP_MEM_PROTOCOL_RAM_HPP

#include <cstdint>
#include <unordered_map>

#include "common/log.hpp"
#include "common/types.hpp"
#include "snap/snap.hpp"

namespace smtp
{

class ProtocolRam
{
  public:
    std::uint64_t
    read(Addr addr, unsigned bytes) const
    {
        SMTP_ASSERT(bytes == 4 || bytes == 8, "unsupported access size");
        SMTP_ASSERT(addr % bytes == 0, "misaligned protocol access");
        Addr word = addr & ~7ULL;
        auto it = words_.find(word);
        std::uint64_t v = it == words_.end() ? 0 : it->second;
        if (bytes == 8)
            return v;
        unsigned shift = (addr & 4) ? 32 : 0;
        return (v >> shift) & 0xffffffffULL;
    }

    void
    write(Addr addr, std::uint64_t value, unsigned bytes)
    {
        SMTP_ASSERT(bytes == 4 || bytes == 8, "unsupported access size");
        SMTP_ASSERT(addr % bytes == 0, "misaligned protocol access");
        Addr word = addr & ~7ULL;
        if (bytes == 8) {
            if (value == 0)
                words_.erase(word);
            else
                words_[word] = value;
            return;
        }
        std::uint64_t v = words_[word];
        unsigned shift = (addr & 4) ? 32 : 0;
        v &= ~(0xffffffffULL << shift);
        v |= (value & 0xffffffffULL) << shift;
        if (v == 0)
            words_.erase(word);
        else
            words_[word] = v;
    }

    /** Number of resident (non-zero) 8-byte words, for tests. */
    std::size_t residentWords() const { return words_.size(); }

    void saveState(snap::Ser &out) const { out.wordMap(words_); }
    void restoreState(snap::Des &in) { in.wordMap(words_); }

  private:
    std::unordered_map<Addr, std::uint64_t> words_;
};

} // namespace smtp

#endif // SMTP_MEM_PROTOCOL_RAM_HPP
