/**
 * @file
 * Global physical address map: which node is home for a page, and where
 * in the home's memory the directory entry for a line lives.
 *
 * Pages are placed explicitly by the workload layer (the paper's
 * applications "use proper page placement to minimize remote memory
 * accesses"); each placed page gets a dense per-node index so its
 * directory entries occupy a compact region — the footprint the
 * directory data caches (and, under SMTp, the L1D/L2) actually see.
 */

#ifndef SMTP_MEM_ADDRESS_MAP_HPP
#define SMTP_MEM_ADDRESS_MAP_HPP

#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "protocol/directory.hpp"

namespace smtp
{

class AddressMap
{
  public:
    virtual ~AddressMap() = default;
    virtual NodeId homeOf(Addr addr) const = 0;
    /** Directory entry address for a line (valid only at its home). */
    virtual Addr dirAddrOf(Addr line_addr) const = 0;
};

/**
 * The production map: explicit page placement with dense per-node
 * directory indexing. Unplaced pages fall back to interleaving by page
 * number (covers instruction segments and incidental accesses).
 */
class PagePlacementMap : public AddressMap
{
  public:
    PagePlacementMap(unsigned num_nodes, unsigned dir_entry_bytes)
        : numNodes_(num_nodes), entryBytes_(dir_entry_bytes),
          nextPageIndex_(num_nodes, 0)
    {
    }

    /** Place @p page (page-aligned) on @p home. Idempotent. */
    void
    place(Addr page, NodeId home)
    {
        SMTP_ASSERT(pageAlign(page) == page, "placing unaligned page");
        SMTP_ASSERT(home < numNodes_, "placing on unknown node");
        auto [it, inserted] = pages_.try_emplace(page);
        if (!inserted) {
            SMTP_ASSERT(it->second.home == home, "page re-placed elsewhere");
            return;
        }
        it->second.home = home;
        it->second.localIndex = nextPageIndex_[home]++;
    }

    NodeId
    homeOf(Addr addr) const override
    {
        auto it = pages_.find(pageAlign(addr));
        if (it != pages_.end())
            return it->second.home;
        return static_cast<NodeId>((addr / pageBytes) % numNodes_);
    }

    Addr
    dirAddrOf(Addr line_addr) const override
    {
        Addr page = pageAlign(line_addr);
        NodeId home;
        std::uint64_t page_index;
        auto it = pages_.find(page);
        if (it != pages_.end()) {
            home = it->second.home;
            page_index = it->second.localIndex;
        } else {
            home = static_cast<NodeId>((line_addr / pageBytes) % numNodes_);
            // Interleaved fallback: global page number / node count gives
            // a dense-enough per-node index.
            page_index = (line_addr / pageBytes) / numNodes_ +
                         fallbackIndexBias;
        }
        constexpr unsigned lines_per_page = pageBytes / l2LineBytes;
        std::uint64_t line_in_page = (line_addr % pageBytes) / l2LineBytes;
        return proto::protoDirBase +
               static_cast<Addr>(home) * proto::protoNodeStride +
               (page_index * lines_per_page + line_in_page) * entryBytes_;
    }

    unsigned numNodes() const { return numNodes_; }

  private:
    /** Keep fallback directory indices clear of placed pages. */
    static constexpr std::uint64_t fallbackIndexBias = 1ULL << 24;

    struct PageInfo
    {
        NodeId home = 0;
        std::uint64_t localIndex = 0;
    };

    unsigned numNodes_;
    unsigned entryBytes_;
    std::vector<std::uint64_t> nextPageIndex_;
    std::unordered_map<Addr, PageInfo> pages_;
};

} // namespace smtp

#endif // SMTP_MEM_ADDRESS_MAP_HPP
