/**
 * @file
 * A trivially fast protocol agent: replays each handler at a fixed
 * cycles-per-instruction rate with no cache or pipeline modelling.
 *
 * Used by the protocol-level tests (it isolates protocol correctness
 * from agent timing) and available as an idealised "hardwired
 * controller" reference point in experiments.
 */

#ifndef SMTP_MEM_IMMEDIATE_AGENT_HPP
#define SMTP_MEM_IMMEDIATE_AGENT_HPP

#include "mem/agent.hpp"
#include "mem/controller.hpp"
#include "sim/clock.hpp"
#include "sim/eventq.hpp"

namespace smtp
{

class ImmediateAgent : public ProtocolAgent
{
  public:
    ImmediateAgent(EventQueue &eq, MemController &mc,
                   Tick per_inst = 1 * tickPerNs)
        : eq_(&eq), mc_(&mc), perInst_(per_inst)
    {
        mc.setAgent(this);
    }

    bool canAccept() const override { return !busy_; }

    void
    start(TransactionCtx *ctx) override
    {
        busy_ = true;
        Tick start = eq_->curTick();
        Tick t = start;
        for (std::size_t i = 0; i < ctx->trace.insts.size(); ++i) {
            const auto &inst = ctx->trace.insts[i];
            t += perInst_;
            if (inst.inst.op == proto::POp::Ldprobe)
                t = std::max(t, ctx->probeReady);
            if (inst.sendIdx >= 0) {
                auto idx = static_cast<unsigned>(inst.sendIdx);
                eq_->schedule(t, [this, ctx, idx] {
                    mc_->releaseSend(ctx, idx);
                });
            }
        }
        busyTicks_ += t - start;
        eq_->schedule(t, [this, ctx] {
            busy_ = false;
            mc_->handlerDone(ctx);
        });
    }

    Tick busyTicks() const override { return busyTicks_; }

  private:
    EventQueue *eq_;
    MemController *mc_;
    Tick perInst_;
    bool busy_ = false;
    Tick busyTicks_ = 0;
};

} // namespace smtp

#endif // SMTP_MEM_IMMEDIATE_AGENT_HPP
