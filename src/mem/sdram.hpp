/**
 * @file
 * SDRAM model (paper Table 3): 80 ns access time, 3.2 GB/s bandwidth,
 * 16-entry request queue. One device per node serves application line
 * fetches, directory reads/writes, protocol-bypass traffic and
 * writebacks; contention between those streams is part of what the
 * machine-model comparison measures.
 */

#ifndef SMTP_MEM_SDRAM_HPP
#define SMTP_MEM_SDRAM_HPP

#include <deque>
#include <functional>

#include "common/types.hpp"
#include "fault/fault.hpp"
#include "sim/eventq.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace smtp
{

struct SdramParams
{
    Tick accessLatency = 80 * tickPerNs;
    double bytesPerTick = 0.0032;   ///< 3.2 GB/s = 3.2 bytes/ns.
    unsigned queueDepth = 16;
};

class Sdram
{
  public:
    Sdram(EventQueue &eq, const SdramParams &params)
        : eq_(&eq), params_(params)
    {
    }

    /**
     * Issue an access. The completion callback fires when the data is
     * available (reads) or accepted (writes). The queue is modelled as
     * elastic: requests beyond queueDepth stack up and simply see the
     * accumulated service delay, which is how a full memory queue
     * manifests to the rest of the node.
     */
    void
    access(Addr addr, unsigned bytes, bool write,
           EventQueue::Callback done = {})
    {
        (void)addr;
        ++(write ? writes : reads);
        Tick now = eq_->curTick();
        Tick start = std::max(now, deviceFree_);
        auto occupancy = static_cast<Tick>(static_cast<double>(bytes) /
                                           params_.bytesPerTick);
        deviceFree_ = start + occupancy;
        busyTicks += deviceFree_ - start;
        queueDelay.sample(static_cast<double>(start - now));
        SMTP_TRACE_EVENT(trace_, now, trace::EventId::SdramAccess,
                         trace::packSdram(bytes, write, start - now));
        Tick ready = start + params_.accessLatency;
        if (faults_ != nullptr && !write) {
            switch (faults_->sdramRead(node_)) {
              case fault::FaultInjector::Ecc::None:
                break;
              case fault::FaultInjector::Ecc::Corrected:
                // Single-bit flip: SEC corrects in the datapath (no
                // timing cost); the corrected word is scrubbed back.
                SMTP_TRACE_EVENT(faults_->trace(node_), now,
                                 trace::EventId::FaultEccCorrect,
                                 trace::packEcc(node_, false));
                break;
              case fault::FaultInjector::Ecc::Detected: {
                // Double-bit flip: DED discards the word and the
                // transient is refetched — one extra device access.
                ++faults_->slice(node_).eccRefetches;
                Tick start2 = std::max(ready, deviceFree_);
                deviceFree_ = start2 + occupancy;
                busyTicks += occupancy;
                ready = start2 + params_.accessLatency;
                SMTP_TRACE_EVENT(faults_->trace(node_), now,
                                 trace::EventId::FaultEccDetect,
                                 trace::packEcc(node_, true));
                break;
              }
            }
        }
        if (done)
            eq_->schedule(ready, std::move(done));
    }

    /** Ticks until the device drains (for quiescence checks). */
    Tick deviceFreeAt() const { return deviceFree_; }

    void setTrace(trace::TraceBuffer *buf) { trace_ = buf; }

    /** Attach the fault injector's ECC model (timing-only flips). */
    void
    setFaultInjector(fault::FaultInjector *fi, NodeId node)
    {
        faults_ = fi;
        node_ = node;
    }

    void
    saveState(snap::Ser &out) const
    {
        out.u64(deviceFree_);
        reads.saveState(out);
        writes.saveState(out);
        busyTicks.saveState(out);
        queueDelay.saveState(out);
    }

    void
    restoreState(snap::Des &in)
    {
        deviceFree_ = in.u64();
        reads.restoreState(in);
        writes.restoreState(in);
        busyTicks.restoreState(in);
        queueDelay.restoreState(in);
    }

    Counter reads, writes;
    Counter busyTicks;
    Distribution queueDelay;

  private:
    EventQueue *eq_;
    SdramParams params_;
    Tick deviceFree_ = 0;
    trace::TraceBuffer *trace_ = nullptr;
    fault::FaultInjector *faults_ = nullptr;
    NodeId node_ = 0;
};

} // namespace smtp

#endif // SMTP_MEM_SDRAM_HPP
