/**
 * @file
 * The per-node memory controller.
 *
 * Owns the Local Miss Interface queue, the network-interface input
 * (2-entry per vnet) and output (16-entry per vnet) queues, the SDRAM,
 * and the handler dispatch unit of Figure 1. Dispatch:
 *
 *   1. selects a waiting message round-robin across the LMI and the
 *      three coherence virtual networks;
 *   2. performs the hardware pre-actions — sets the home-local flag,
 *      launches the speculative SDRAM line read for request types that
 *      expect data, applies (or defers) the L2 probe for forwarded
 *      interventions, releases the writeback-race tracker on WbAck;
 *   3. runs the handler functionally against the node's protocol RAM
 *      and directory state, obtaining the dynamic trace; and
 *   4. hands the trace to the protocol agent (embedded PP or SMTp
 *      protocol thread) for timing. Sends recorded in the trace leave
 *      the node only when the agent replays the corresponding SendG.
 *
 * For SMTp, a standard controller: identical hardware minus the agent
 * being on-die logic — which is exactly the paper's point.
 */

#ifndef SMTP_MEM_CONTROLLER_HPP
#define SMTP_MEM_CONTROLLER_HPP

#include <array>
#include <cstdio>
#include <deque>
#include <memory>
#include <unordered_map>

#include "cache/hierarchy.hpp"
#include "common/fixed_queue.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "common/types.hpp"
#include "mem/address_map.hpp"
#include "mem/agent.hpp"
#include "mem/protocol_ram.hpp"
#include "mem/sdram.hpp"
#include "network/network.hpp"
#include "protocol/executor.hpp"
#include "protocol/handlers.hpp"
#include "sim/clock.hpp"
#include "sim/eventq.hpp"
#include "sim/stats.hpp"

namespace smtp
{

struct McParams
{
    std::uint64_t freqMHz = 1000;       ///< Half of a 2 GHz core.
    SdramParams sdram;
    unsigned lmiQueueDepth = 16;
    unsigned niInQueueDepth = 2;
    unsigned niOutQueueDepth = 16;
    /** CPU <-> controller crossing (large for the off-chip Base model). */
    Tick busLatency = 1 * tickPerNs;
    /** L2 probe round trip as seen from the controller. */
    Tick probeLatency = 5 * tickPerNs;
    /** Deferred-intervention replay interval. */
    Tick deferRetry = 50 * tickPerNs;
    /**
     * NAK retry policy (backoff shape + starvation threshold). The
     * default Fixed policy reproduces the historical fixed-base-plus-
     * jitter delay bit for bit.
     */
    fault::RetryPolicyConfig retry;
    std::uint64_t rngSeed = 1;

    /**
     * Phase-priority protocol variant: service the request queues in
     * barrier-phase priority order (lowest epoch first) instead of
     * round-robin FIFO, so a straggler's old requests overtake queued
     * work from nodes that already advanced. Replies and forwards keep
     * strict priority (deadlock avoidance is unchanged — the vnet
     * ordering still drains dependencies first). Off by default; the
     * bitvector/migratory protocols keep the historical round-robin.
     */
    bool phasePriority = false;
    /** Epoch granularity for request phase stamps. */
    Tick phaseEpochTicks = 25 * tickPerNs;
    /**
     * Starvation floor: after this many consecutive bypasses of one
     * request source's head message, that source is force-served
     * regardless of phase.
     */
    unsigned phaseStarvationFloor = 64;
    /**
     * Deliberate bug (validation only): when the starvation floor
     * trips, discard the head message instead of force-serving it —
     * the transaction wedges and the watchdog must flag it.
     */
    bool injectDropOnFloor = false;
};

class MemController : public proto::ExecEnv
{
  public:
    MemController(EventQueue &eq, NodeId self, const McParams &params,
                  const AddressMap &map, const proto::HandlerImage &image,
                  CacheHierarchy &cache, Network &net);

    void setAgent(ProtocolAgent *agent) { agent_ = agent; }

    // ---- Inbound interfaces ------------------------------------------

    /** From the cache hierarchy (hook this as its LmiEnqueueFn). */
    bool lmiEnqueue(const proto::Message &msg);

    /** From the network (hook this as its DeliverFn). */
    bool niDeliver(const proto::Message &msg);

    /** Protocol-space SDRAM access (cache bypass bus). */
    void bypassAccess(Addr addr, bool write, EventQueue::Callback done);

    // ---- Agent callbacks ---------------------------------------------

    /** The agent executed send @p idx of @p ctx's trace. */
    void releaseSend(TransactionCtx *ctx, unsigned idx);

    /** When the probe result for @p ctx becomes available (ldprobe). */
    Tick probeReadyTick(const TransactionCtx *ctx) const
    {
        return ctx->probeReady;
    }

    /** The agent finished the handler (its ldctxt completed). */
    void handlerDone(TransactionCtx *ctx);

    /** The agent's acceptance state changed (e.g. an LAS slot opened). */
    void agentPoke() { tryDispatch(); }

    /** Look up a live transaction (agent state restore). */
    TransactionCtx *
    ctxById(std::uint64_t id)
    {
        auto it = ctxs_.find(id);
        return it == ctxs_.end() ? nullptr : it->second.get();
    }

    // ---- Snapshot support --------------------------------------------

    /** Dispatch poke after a bus/clock crossing. */
    struct PokeEv
    {
        static constexpr std::uint32_t kSnapId = snap::evMcPoke;
        MemController *mc;

        void operator()() const { mc->tryDispatch(); }

        void snapEncode(snap::Ser &s) const { s.u16(mc->self_); }
    };

    /** Deferred-intervention replay poll. */
    struct DispatchPollEv
    {
        static constexpr std::uint32_t kSnapId = snap::evMcDispatchPoll;
        MemController *mc;

        void
        operator()() const
        {
            mc->dispatchPollScheduled_ = false;
            mc->tryDispatch();
        }

        void snapEncode(snap::Ser &s) const { s.u16(mc->self_); }
    };

    /** Speculative/lazy SDRAM line read completed for a transaction. */
    struct CtxMemDoneEv
    {
        static constexpr std::uint32_t kSnapId = snap::evMcCtxMemDone;
        MemController *mc;
        std::uint64_t ctxId;

        void operator()() const { mc->ctxMemDone(ctxId); }

        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(mc->self_);
            s.u64(ctxId);
        }
    };

    /** Local fill delivery (retries when the eviction path pushes back). */
    struct DeliverLocalEv
    {
        static constexpr std::uint32_t kSnapId = snap::evMcDeliverLocal;
        MemController *mc;
        proto::Message msg;

        void operator()() const { mc->deliverLocalNow(msg); }

        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(mc->self_);
            proto::snapPut(s, msg);
        }
    };

    /** Delayed network send entering the NI output queues. */
    struct NetDeliverEv
    {
        static constexpr std::uint32_t kSnapId = snap::evMcNetDeliver;
        MemController *mc;
        proto::Message msg;

        void operator()() const { mc->netDeliverNow(msg); }

        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(mc->self_);
            proto::snapPut(s, msg);
        }
    };

    /** One message per controller cycle leaves through the NI. */
    struct DrainNiOutEv
    {
        static constexpr std::uint32_t kSnapId = snap::evMcDrainNiOut;
        MemController *mc;

        void operator()() const { mc->drainNiOutNow(); }

        void snapEncode(snap::Ser &s) const { s.u16(mc->self_); }
    };

    /** Commit a carried data line to local SDRAM. */
    struct MemWriteEv
    {
        static constexpr std::uint32_t kSnapId = snap::evMcMemWrite;
        MemController *mc;
        Addr addr;

        void
        operator()() const
        {
            mc->sdram_.access(lineAlign(addr), l2LineBytes, true);
        }

        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(mc->self_);
            s.u64(addr);
        }
    };

    /**
     * Data-availability continuation parked in a transaction's
     * memWaiters list. Kinds: 0 = SDRAM write commit (addr in msg.addr),
     * 1 = local delivery, 2 = network send, 3 = stage the per-MSHR data
     * buffer (id in msg.mshr).
     */
    struct PendingSendEv
    {
        static constexpr std::uint32_t kSnapId = snap::evMcPendingSend;
        MemController *mc;
        std::uint8_t kind;
        proto::Message msg;
        bool delayed;

        void operator()() const { mc->runPendingSend(kind, msg, delayed); }

        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(mc->self_);
            s.u8(kind);
            proto::snapPut(s, msg);
            s.b(delayed);
        }
    };

    /** Bypass-bus crossing towards the SDRAM (protocol space). */
    struct BypassBusEv
    {
        static constexpr std::uint32_t kSnapId = snap::evMcBypassDone;
        MemController *mc;
        Addr addr;
        bool write;
        EventQueue::Callback done;

        void
        operator()() const
        {
            mc->sdram_.access(addr, l2LineBytes, write, done);
        }

        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(mc->self_);
            s.u64(addr);
            s.b(write);
            snap::EventCodec::encode(s, done);
        }
    };

    void saveState(snap::Ser &out) const;
    void restoreState(snap::Des &in, const snap::EventCodec &codec);
    static void
    registerSnapEvents(snap::EventCodec &codec,
                       std::function<MemController *(NodeId)> resolve);

    // ---- proto::ExecEnv ----------------------------------------------

    std::uint64_t protoLoad(Addr a, unsigned bytes) override;
    void protoStore(Addr a, std::uint64_t v, unsigned bytes) override;
    Addr dirAddrOf(Addr line_addr) override;
    NodeId homeOf(Addr line_addr) override;
    std::uint64_t probeResult() override;

    // ---- Introspection -----------------------------------------------

    /** Attach the coherence checker (nullptr => no checking overhead). */
    void setChecker(check::Checker *c) { checker_ = c; }

    /**
     * Attach the fault injector (nullptr = fault-free). The controller
     * consults it for forced NAKs at dispatch and forwards it to the
     * SDRAM for the ECC bit-flip model.
     */
    void
    setFaultInjector(fault::FaultInjector *fi)
    {
        faults_ = fi;
        sdram_.setFaultInjector(fi, self_);
    }

    /** Attach the node's memory telemetry buffer (also fed to SDRAM). */
    void
    setTrace(trace::TraceBuffer *buf)
    {
        trace_ = buf;
        sdram_.setTrace(buf);
    }

    ProtocolRam &ram() { return ram_; }
    Sdram &sdram() { return sdram_; }
    const ClockDomain &clock() const { return clock_; }
    NodeId nodeId() const { return self_; }

    bool
    quiescent() const
    {
        if (inFlight_ != 0 || !lmiQ_.empty() || !deferQ_.empty())
            return false;
        for (const auto &q : niInQ_)
            if (!q.empty())
                return false;
        for (const auto &q : niOutQ_)
            if (!q.empty())
                return false;
        return niOutOverflow_.empty() && pendingDelayedSends_ == 0 &&
               pendingLocalDeliveries_ == 0;
    }

    /** Dump queue/transaction state (wedge diagnosis). */
    void
    debugState(std::FILE *out) const
    {
        std::fprintf(out,
                     "    mc: lmi=%zu niIn=[%zu,%zu,%zu,%zu] "
                     "niOut=[%zu,%zu,%zu,%zu] ovf=%zu defer=%zu "
                     "inflight=%u delayed=%u local=%u\n",
                     lmiQ_.size(), niInQ_[0].size(), niInQ_[1].size(),
                     niInQ_[2].size(), niInQ_[3].size(), niOutQ_[0].size(),
                     niOutQ_[1].size(), niOutQ_[2].size(),
                     niOutQ_[3].size(), niOutOverflow_.size(),
                     deferQ_.size(), inFlight_, pendingDelayedSends_,
                     pendingLocalDeliveries_);
        std::fprintf(out,
                     "    mc: tryDispatch calls=%llu last=%llu lastLmi=%llu "
                     "agentAccept=%d\n",
                     static_cast<unsigned long long>(tryDispatchCalls),
                     static_cast<unsigned long long>(lastTryDispatch),
                     static_cast<unsigned long long>(lastLmiEnqueue),
                     agent_ ? static_cast<int>(agent_->canAccept()) : -1);
        for (const auto &[id, ctx] : ctxs_) {
            std::fprintf(out, "    ctx %llu: %s addr=%llx memDone=%d\n",
                         static_cast<unsigned long long>(id),
                         std::string(msgTypeName(ctx->msg.type)).c_str(),
                         static_cast<unsigned long long>(ctx->msg.addr),
                         ctx->memDone);
        }
    }

    /** Directory entry value for a line homed here (tests/checkers). */
    std::uint64_t
    dirEntry(Addr line_addr)
    {
        return ram_.read(dirAddrOf(line_addr), dirEntryBytes_);
    }

    // Stats.
    Counter handlersDispatched;
    Counter msgsFromLmi, msgsFromNet;
    Counter probesDeferred;
    Counter naksSent;  // (observed at release time)
    /** Transactions that crossed the starvation retry threshold. */
    Counter starvationFlags;
    /** Invalidations forwarded to sharers (released FwdInval sends). */
    Counter invalsSent;
    /**
     * Head-of-queue bypasses forgiven by the phase-priority starvation
     * floor (each force-serve after `phaseStarvationFloor` bypasses).
     */
    Counter phaseFloorTrips;
    Distribution lmiOccupancy;
    Distribution handlerLatency;
    /**
     * Request-class directory queueing delay, in ticks of epoch
     * granularity (pop epoch minus stamp epoch, scaled): the metric the
     * phase-priority variant exists to shrink. Sampled under every
     * protocol so the comparison harness can diff disciplines.
     */
    Distribution reqQueueDelay;
    std::uint64_t tryDispatchCalls = 0;
    Tick lastTryDispatch = 0;
    Tick lastLmiEnqueue = 0;

  private:
    void tryDispatch();
    void scheduleDispatchPoll();
    void dispatch(const proto::Message &msg);
    bool popNextMessage(proto::Message &out);
    bool popRequestPhasePriority(proto::Message &out);
    std::uint32_t curEpoch() const;
    void sampleReqQueueDelay(const proto::Message &msg);

    /** Stage SDRAM line data for requester-side completion sends. */
    void stageMshrData(std::uint8_t mshr, Tick ready);
    Tick mshrDataReady(std::uint8_t mshr) const;

    void deliverLocal(proto::Message msg, Tick data_ready);
    void pushToNetwork(proto::Message msg, Tick data_ready, bool delayed);
    void drainNiOut();

    /** Event bodies (shared by the lambda-free snapshot functors). */
    void ctxMemDone(std::uint64_t id);
    void deliverLocalNow(const proto::Message &msg);
    void netDeliverNow(const proto::Message &msg);
    void drainNiOutNow();
    void runPendingSend(std::uint8_t kind, const proto::Message &msg,
                        bool delayed);
    void startSend(const proto::SendRec &send, Addr ctx_addr, Tick ready);

    /** Classify a handler store into the checker's dir/pend audits. */
    void auditProtoStore(Addr a, std::uint64_t v);

    EventQueue *eq_;
    NodeId self_;
    McParams params_;
    ClockDomain clock_;
    const AddressMap *map_;
    const proto::HandlerImage *image_;
    CacheHierarchy *cache_;
    Network *net_;
    ProtocolAgent *agent_ = nullptr;

    ProtocolRam ram_;
    Sdram sdram_;
    proto::Executor executor_;
    unsigned dirEntryBytes_;
    Rng rng_;

    FixedQueue<proto::Message> lmiQ_;
    std::array<FixedQueue<proto::Message>, proto::numVnets> niInQ_;
    std::array<FixedQueue<proto::Message>, proto::numVnets> niOutQ_;
    std::deque<proto::Message> niOutOverflow_;
    std::deque<std::pair<Tick, proto::Message>> deferQ_;
    unsigned rrSource_ = 0;

    check::Checker *checker_ = nullptr;
    fault::FaultInjector *faults_ = nullptr;
    trace::TraceBuffer *trace_ = nullptr;
    TransactionCtx *dispatching_ = nullptr; ///< Valid during executor run.
    /** Live transactions; send closures keep them alive via shared_ptr. */
    std::unordered_map<std::uint64_t, std::shared_ptr<TransactionCtx>> ctxs_;
    std::uint64_t nextCtxId_ = 1;
    unsigned inFlight_ = 0;
    unsigned pendingDelayedSends_ = 0;
    unsigned pendingLocalDeliveries_ = 0;
    bool dispatchPollScheduled_ = false;
    bool niOutDrainScheduled_ = false;

    /** Per-MSHR staged-data availability (requester side). */
    std::array<Tick, 40> mshrReady_;

    /**
     * Per-MSHR phase stamp of the original request (requester side):
     * outgoing requests — including NAK retries — carry the epoch of
     * first issue, so a retried request keeps its age under the
     * phase-priority discipline.
     */
    std::array<std::uint32_t, 40> mshrPhase_;
    /** Consecutive head bypasses per request source (0 = LMI, 1 = NI). */
    std::array<std::uint32_t, 2> phaseBypass_;
};

} // namespace smtp

#endif // SMTP_MEM_CONTROLLER_HPP
