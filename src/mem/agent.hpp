/**
 * @file
 * The protocol-agent boundary.
 *
 * The memory controller dispatches each coherence transaction by running
 * its handler *functionally* (producing a HandlerTrace) and then handing
 * the trace to a ProtocolAgent for timing. Two agents exist:
 *
 *  - pengine::PEngine — the embedded dual-issue protocol processor of
 *    the conventional machine models (Base, Int*);
 *  - core::ProtocolThread — the SMTp protocol thread, which injects the
 *    trace into the main SMT pipeline as micro-ops.
 *
 * During replay the agent calls back into the controller to release
 * message sends at the cycle the corresponding SendG executes
 * non-speculatively, and to learn when the L2 probe result is available
 * (the ldprobe stall).
 */

#ifndef SMTP_MEM_AGENT_HPP
#define SMTP_MEM_AGENT_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "protocol/executor.hpp"
#include "protocol/message.hpp"
#include "sim/inline_callback.hpp"

namespace smtp
{

/** One in-flight handler: the message, its trace, and data timing. */
struct TransactionCtx
{
    std::uint64_t id = 0;
    proto::Message msg;
    proto::HandlerTrace trace;
    Tick dispatchTick = 0;
    /** When the dispatch unit's parallel L2 probe result is available. */
    Tick probeReady = 0;
    /** Probe outcome bits as seen by ldprobe (bit0 hit, bit1 dirty). */
    std::uint64_t probeBits = 0;
    /** Speculative SDRAM line read state. */
    bool memReadStarted = false;
    bool memDone = false;
    std::vector<InlineCallback> memWaiters;
    /**
     * handlerDone has run. The controller keeps a finished context
     * alive only while an SDRAM read completion event still references
     * it by id; the completion reaps it.
     */
    bool finished = false;
};

class ProtocolAgent
{
  public:
    virtual ~ProtocolAgent() = default;

    /** Can the agent take another handler now (LAS slot for SMTp)? */
    virtual bool canAccept() const = 0;

    /**
     * Begin timing the handler. The agent must eventually call
     * MemController::releaseSend for every send in the trace (in order)
     * and MemController::handlerDone(ctx) exactly once.
     */
    virtual void start(TransactionCtx *ctx) = 0;

    /** Busy time accumulated by the agent (Table 7's occupancy). */
    virtual Tick busyTicks() const = 0;
};

} // namespace smtp

#endif // SMTP_MEM_AGENT_HPP
