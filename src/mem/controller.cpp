#include "controller.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include <cstdio>
#include <cstdlib>

#include "check/checker.hpp"
#include "common/log.hpp"
#include "protocol/directory.hpp"

namespace smtp
{

using proto::DataSrc;
using proto::Message;
using proto::MsgType;
using proto::SendTarget;

namespace
{

/** SMTP_TRACE is read once; per-message getenv showed up in profiles. */
bool
traceEnabled()
{
    static const bool on = std::getenv("SMTP_TRACE") != nullptr;
    return on;
}

/** Map a forwarded intervention to the cache probe it launches. */
MsgType
probeKindFor(MsgType t)
{
    switch (t) {
      case MsgType::FwdIntervSh: return MsgType::CcIntervSh;
      case MsgType::FwdIntervEx: return MsgType::CcIntervEx;
      case MsgType::FwdInval: return MsgType::CcInval;
      default: SMTP_PANIC("no probe for this message type");
    }
}

} // namespace

MemController::MemController(EventQueue &eq, NodeId self,
                             const McParams &params, const AddressMap &map,
                             const proto::HandlerImage &image,
                             CacheHierarchy &cache, Network &net)
    : eq_(&eq), self_(self), params_(params), clock_(params.freqMHz),
      map_(&map), image_(&image), cache_(&cache), net_(&net),
      sdram_(eq, params.sdram), executor_(image, *this),
      dirEntryBytes_(4), rng_(params.rngSeed + self * 7919),
      lmiQ_(params.lmiQueueDepth)
{
    for (auto &q : niInQ_)
        q.setCapacity(params.niInQueueDepth);
    for (auto &q : niOutQ_)
        q.setCapacity(params.niOutQueueDepth);
    mshrReady_.fill(0);
    mshrPhase_.fill(0);
    phaseBypass_.fill(0);
    // Queueing delay is quantized to phase epochs; 64 buckets of one
    // epoch each give protocol_compare its percentile columns without
    // slowing the no-histogram sample() fast path elsewhere.
    reqQueueDelay.enableHistogram(
        0.0,
        64.0 * static_cast<double>(params.phaseEpochTicks), 64);
    executor_.boot(self);
    // The directory entry width comes from the handler image itself:
    // the load that follows a Dira always uses the format's width.
    dirEntryBytes_ = 0;
    for (std::size_t i = 0; i + 1 < image.code.size() && !dirEntryBytes_;
         ++i) {
        if (image.code[i].op == proto::POp::Dira &&
            image.code[i + 1].op == proto::POp::Ld) {
            dirEntryBytes_ = image.code[i + 1].memBytes;
        }
    }
    if (dirEntryBytes_ == 0)
        dirEntryBytes_ = 4;
}

bool
MemController::lmiEnqueue(const Message &msg)
{
    if (lmiQ_.full())
        return false;
    ++msgsFromLmi;
    lmiOccupancy.sample(static_cast<double>(lmiQ_.size()));
    // The bus crossing (large for the off-chip Base controller) is
    // charged by delaying visibility to the dispatch unit.
    Message m = msg;
    // Stamp the request's phase epoch at first issue (under every
    // protocol: the stamp is free and keeps the queueing-delay stat
    // comparable across disciplines). The per-MSHR copy lets the NAK
    // retry path re-stamp an old request with its original age.
    m.phase = curEpoch();
    if (m.mshr < mshrPhase_.size() &&
        (m.type == MsgType::PiGet || m.type == MsgType::PiGetx ||
         m.type == MsgType::PiUpgrade)) {
        mshrPhase_[m.mshr] = m.phase;
    }
    lmiQ_.push(m);
    lastLmiEnqueue = eq_->curTick();
    eq_->scheduleIn(params_.busLatency, PokeEv{this});
    return true;
}

bool
MemController::niDeliver(const Message &msg)
{
    auto vnet = proto::vnetOf(msg.type);
    if (niInQ_[vnet].full())
        return false;
    ++msgsFromNet;
    niInQ_[vnet].push(msg);
    eq_->scheduleIn(clock_.period(), PokeEv{this});
    return true;
}

void
MemController::bypassAccess(Addr addr, bool write, EventQueue::Callback done)
{
    eq_->scheduleIn(params_.busLatency,
                    BypassBusEv{this, addr, write, std::move(done)});
}

std::uint32_t
MemController::curEpoch() const
{
    return static_cast<std::uint32_t>(eq_->curTick() /
                                      params_.phaseEpochTicks);
}

void
MemController::sampleReqQueueDelay(const Message &msg)
{
    std::uint32_t now = curEpoch();
    std::uint32_t age = now > msg.phase ? now - msg.phase : 0;
    reqQueueDelay.sample(static_cast<double>(age) *
                         static_cast<double>(params_.phaseEpochTicks));
}

bool
MemController::popNextMessage(Message &out)
{
    // Deferred interventions whose retry time has come take precedence.
    if (!deferQ_.empty() && deferQ_.front().first <= eq_->curTick()) {
        out = deferQ_.front().second;
        deferQ_.pop_front();
        return true;
    }
    if (params_.phasePriority) {
        // Replies, then forwards, strictly first: the vnet dependency
        // order that keeps the protocol deadlock-free is unchanged —
        // only the request class is re-ordered by phase.
        for (auto vnet : {proto::vnetReply, proto::vnetForward}) {
            if (!niInQ_[vnet].empty()) {
                out = niInQ_[vnet].pop();
                net_->poke(self_, static_cast<std::uint8_t>(vnet));
                return true;
            }
        }
        return popRequestPhasePriority(out);
    }
    // Round-robin across LMI and the three coherence vnets.
    struct Source
    {
        FixedQueue<Message> *q;
        int vnet; // -1 for LMI
    };
    Source sources[4] = {
        {&lmiQ_, -1},
        {&niInQ_[proto::vnetReply], proto::vnetReply},
        {&niInQ_[proto::vnetForward], proto::vnetForward},
        {&niInQ_[proto::vnetRequest], proto::vnetRequest},
    };
    for (unsigned i = 0; i < 4; ++i) {
        auto &src = sources[(rrSource_ + i) % 4];
        if (!src.q->empty()) {
            rrSource_ = (rrSource_ + i + 1) % 4;
            out = src.q->pop();
            if (src.vnet < 0 || src.vnet == proto::vnetRequest)
                sampleReqQueueDelay(out);
            if (src.vnet >= 0)
                net_->poke(self_, static_cast<std::uint8_t>(src.vnet));
            return true;
        }
    }
    return false;
}

bool
MemController::popRequestPhasePriority(Message &out)
{
    bool have_lmi = !lmiQ_.empty();
    bool have_net = !niInQ_[proto::vnetRequest].empty();
    if (!have_lmi && !have_net)
        return false;
    // 0 = LMI, 1 = network request vnet.
    unsigned pick;
    if (have_lmi != have_net) {
        pick = have_lmi ? 0 : 1;
    } else {
        // Both heads waiting: the lower (older) epoch wins; ties go to
        // the LMI, matching the round-robin order's LMI-first seed.
        pick = niInQ_[proto::vnetRequest].front().phase <
                       lmiQ_.front().phase
                   ? 1u
                   : 0u;
        unsigned bypassed = 1 - pick;
        if (++phaseBypass_[bypassed] >= params_.phaseStarvationFloor) {
            // Starvation floor: the bypassed head waited through too
            // many grants; serve it now regardless of phase.
            ++phaseFloorTrips;
            const Message &head = bypassed == 0
                                      ? lmiQ_.front()
                                      : niInQ_[proto::vnetRequest].front();
            if (checker_ != nullptr)
                checker_->onStarvation(self_, head.addr,
                                       phaseBypass_[bypassed]);
            if (params_.injectDropOnFloor) {
                // Deliberate bug: discard the starved head instead of
                // serving it. Its transaction wedges and the watchdog
                // must flag the lost message.
                phaseBypass_[bypassed] = 0;
                if (bypassed == 0) {
                    lmiQ_.pop();
                } else {
                    niInQ_[proto::vnetRequest].pop();
                    net_->poke(self_, proto::vnetRequest);
                }
            } else {
                pick = bypassed;
            }
        }
    }
    phaseBypass_[pick] = 0;
    if (pick == 0) {
        out = lmiQ_.pop();
    } else {
        out = niInQ_[proto::vnetRequest].pop();
        net_->poke(self_, proto::vnetRequest);
    }
    sampleReqQueueDelay(out);
    return true;
}

void
MemController::scheduleDispatchPoll()
{
    if (dispatchPollScheduled_ || deferQ_.empty())
        return;
    dispatchPollScheduled_ = true;
    Tick when = std::max(deferQ_.front().first, eq_->curTick() + 1);
    eq_->schedule(when, DispatchPollEv{this});
}

void
MemController::tryDispatch()
{
    ++tryDispatchCalls;
    lastTryDispatch = eq_->curTick();
    while (agent_ != nullptr && agent_->canAccept()) {
        Message msg;
        if (!popNextMessage(msg))
            break;
        dispatch(msg);
    }
    scheduleDispatchPoll();
}

void
MemController::dispatch(const Message &msg_in)
{
    Message msg = msg_in;
    Tick now = eq_->curTick();
    bool home_local = map_->homeOf(msg.addr) == self_;
    if (home_local) {
        msg.flags |= proto::flagHomeLocal;
        // FLASH-style dispatch: locally-homed processor requests index
        // their own handlers (no home-test branch in protocol code).
        msg.type = proto::localPiVariant(msg.type);
    }

    // Forwarded interventions chasing a grant still in flight to us are
    // replayed once the fill lands (Section 2 of DESIGN.md's race notes).
    if ((msg.type == MsgType::FwdIntervSh ||
         msg.type == MsgType::FwdIntervEx) &&
        cache_->probeWouldDefer(msg.addr)) {
        ++probesDeferred;
        SMTP_TRACE_EVENT(trace_, now, trace::EventId::McProbeDefer,
                         trace::packMsg(msg, msg.mshr));
        deferQ_.emplace_back(now + params_.deferRetry, msg);
        scheduleDispatchPoll();
        return;
    }

    if (traceEnabled()) {
        std::fprintf(stderr,
                     "[%llu] n%u dispatch %s addr=%llx src=%u req=%u "
                     "mshr=%u ack=%u\n",
                     static_cast<unsigned long long>(now), self_,
                     std::string(msgTypeName(msg.type)).c_str(),
                     static_cast<unsigned long long>(msg.addr), msg.src,
                     msg.requester, msg.mshr, msg.ackCount);
    }

    // Forced-NAK injection: the dispatch unit pretends the pending
    // table was busy and bounces the request without running a handler,
    // exercising the requester's retry/backoff path. Only the NAKable
    // request types are eligible — the same set a real busy home NAKs.
    if (faults_ != nullptr &&
        (msg.type == MsgType::ReqGet || msg.type == MsgType::ReqGetx ||
         msg.type == MsgType::ReqUpgrade) &&
        faults_->forceNak(self_)) {
        Message nak;
        nak.type = MsgType::RplNak;
        nak.addr = msg.addr;
        nak.src = self_;
        nak.dest = msg.src;
        nak.requester = msg.requester;
        nak.mshr = msg.mshr;
        ++naksSent;
        SMTP_TRACE_EVENT(trace_, now, trace::EventId::McNak,
                         trace::packMsg(nak, nak.mshr));
        SMTP_TRACE_EVENT(faults_->trace(self_), now,
                         trace::EventId::FaultForcedNak,
                         trace::packMsg(nak, nak.mshr));
        ++pendingDelayedSends_;
        pushToNetwork(nak, now, false);
        return;
    }

    SMTP_TRACE_EVENT(trace_, now, trace::EventId::McDispatch,
                     trace::packMsg(msg, msg.mshr));
    auto ctx = std::make_shared<TransactionCtx>();
    ctx->id = nextCtxId_++;
    ctx->msg = msg;
    ctx->dispatchTick = now;
    ctxs_[ctx->id] = ctx;
    ++inFlight_;

    // Hardware pre-actions.
    switch (msg.type) {
      case MsgType::FwdIntervSh:
      case MsgType::FwdIntervEx:
      case MsgType::FwdInval: {
        auto out = cache_->applyProbe(probeKindFor(msg.type), msg.addr);
        ctx->probeBits = (out.hit ? 1u : 0u) | (out.dirty ? 2u : 0u);
        ctx->probeReady = now + params_.probeLatency;
        break;
      }
      case MsgType::RplWbAck:
        // The race-free flavour; RplWbBusyAck leaves the tracker armed
        // for the stale intervention still chasing this node.
        cache_->clearWbPending(msg.addr);
        break;
      default:
        break;
    }

    if (proto::expectsMemoryData(msg.type) && home_local) {
        ctx->memReadStarted = true;
        sdram_.access(lineAlign(msg.addr), l2LineBytes, false,
                      CtxMemDoneEv{this, ctx->id});
        if (msg.requester == self_) {
            // Keep the staged line available for a later CcFill issued
            // by the ack-collection handler (DataSrc::Buffer).
            Message stage;
            stage.mshr = msg.mshr;
            ctx->memWaiters.push_back(PendingSendEv{this, 3, stage, false});
        }
    }
    if (msg.type == MsgType::RplDataEx && msg.requester == self_) {
        // Carried exclusive data parks in the per-MSHR buffer until the
        // invalidation acks finish.
        stageMshrData(msg.mshr, now);
    }

    // Functional execution: directory and pending-table updates happen
    // now, in dispatch order — the architectural serialization point.
    if (checker_ != nullptr)
        checker_->onDispatch(self_, msg);
    dispatching_ = ctx.get();
    ctx->trace = executor_.run(msg);
    dispatching_ = nullptr;
    if (checker_ != nullptr)
        checker_->onHandlerExecuted(self_, ctx->trace);

    // Handlers record impossible protocol states in scratch word 0.
    Addr err_addr = proto::protoScratchBase +
                    static_cast<Addr>(self_) * proto::protoNodeStride +
                    proto::protoErrorOffset;
    std::uint64_t err = ram_.read(err_addr, 8);
    SMTP_ASSERT(err == 0,
                "protocol handler hit an impossible state (hdr %llx) "
                "at node %u for %s",
                static_cast<unsigned long long>(err), self_,
                std::string(msgTypeName(msg.type)).c_str());

    ++handlersDispatched;
    agent_->start(ctx.get());
}

void
MemController::stageMshrData(std::uint8_t mshr, Tick ready)
{
    SMTP_ASSERT(mshr < mshrReady_.size(), "mshr id out of range");
    mshrReady_[mshr] = ready;
}

Tick
MemController::mshrDataReady(std::uint8_t mshr) const
{
    SMTP_ASSERT(mshr < mshrReady_.size(), "mshr id out of range");
    return mshrReady_[mshr];
}

void
MemController::releaseSend(TransactionCtx *ctx_raw, unsigned idx)
{
    auto it = ctxs_.find(ctx_raw->id);
    SMTP_ASSERT(it != ctxs_.end(), "send for a dead transaction");
    auto ctx = it->second;
    SMTP_ASSERT(idx < ctx->trace.sends.size(), "send index out of range");
    const proto::SendRec &send = ctx->trace.sends[idx];
    if (traceEnabled()) {
        std::fprintf(stderr, "[%llu] n%u release %s addr=%llx\n",
                     static_cast<unsigned long long>(eq_->curTick()), self_,
                     std::string(msgTypeName(send.msg.type)).c_str(),
                     static_cast<unsigned long long>(send.msg.addr));
    }

    // Bookkeeping happens at release time even when the data payload is
    // still in flight (the continuation is parked in memWaiters).
    switch (send.target) {
      case SendTarget::MemWrite:
        break;
      case SendTarget::Local:
        ++pendingLocalDeliveries_;
        break;
      case SendTarget::Network:
        if (send.msg.type == MsgType::RplNak) {
            ++naksSent;
            SMTP_TRACE_EVENT(trace_, eq_->curTick(), trace::EventId::McNak,
                             trace::packMsg(send.msg, send.msg.mshr));
        }
        if (send.msg.type == MsgType::FwdInval)
            ++invalsSent;
        ++pendingDelayedSends_;
        break;
    }

    // Resolve when the data payload is available, or park a
    // serializable continuation until the SDRAM read lands.
    Tick ready = eq_->curTick();
    switch (send.dataSrc) {
      case DataSrc::None:
      case DataSrc::Carried:
        break;
      case DataSrc::Probe:
        ready = std::max(ready, ctx->probeReady);
        break;
      case DataSrc::Buffer:
        ready = std::max(ready, mshrDataReady(send.msg.mshr));
        break;
      case DataSrc::Memory:
        if (!ctx->memReadStarted) {
            // Lazy read (e.g. the PutClean writeback-race path).
            ctx->memReadStarted = true;
            sdram_.access(lineAlign(ctx->msg.addr), l2LineBytes, false,
                          CtxMemDoneEv{this, ctx->id});
        }
        if (!ctx->memDone) {
            std::uint8_t kind = 0;
            Message m = send.msg;
            switch (send.target) {
              case SendTarget::MemWrite:
                kind = 0;
                m = Message{};
                m.addr = ctx->msg.addr;
                break;
              case SendTarget::Local:
                kind = 1;
                break;
              case SendTarget::Network:
                kind = 2;
                break;
            }
            ctx->memWaiters.push_back(
                PendingSendEv{this, kind, m, send.delayed});
            return;
        }
        break;
    }
    startSend(send, ctx->msg.addr, ready);
}

void
MemController::startSend(const proto::SendRec &send, Addr ctx_addr,
                         Tick ready)
{
    switch (send.target) {
      case SendTarget::MemWrite:
        eq_->schedule(std::max(ready, eq_->curTick()),
                      MemWriteEv{this, ctx_addr});
        break;
      case SendTarget::Local:
        deliverLocal(send.msg, ready);
        break;
      case SendTarget::Network:
        pushToNetwork(send.msg, ready, send.delayed);
        break;
    }
}

void
MemController::runPendingSend(std::uint8_t kind, const Message &msg,
                              bool delayed)
{
    switch (kind) {
      case 0:
        eq_->schedule(eq_->curTick(), MemWriteEv{this, msg.addr});
        break;
      case 1:
        deliverLocal(msg, eq_->curTick());
        break;
      case 2:
        pushToNetwork(msg, eq_->curTick(), delayed);
        break;
      case 3:
        stageMshrData(msg.mshr, eq_->curTick());
        break;
      default:
        SMTP_PANIC("bad pending-send kind %u", kind);
    }
}

void
MemController::ctxMemDone(std::uint64_t id)
{
    auto it = ctxs_.find(id);
    SMTP_ASSERT(it != ctxs_.end(), "memory completion for a dead ctx");
    auto ctx = it->second;
    ctx->memDone = true;
    auto waiters = std::move(ctx->memWaiters);
    ctx->memWaiters.clear();
    for (auto &fn : waiters)
        fn();
    if (ctx->finished)
        ctxs_.erase(id);
}

void
MemController::deliverLocal(Message msg, Tick data_ready)
{
    Tick when = std::max(data_ready, eq_->curTick()) + params_.busLatency;
    static_assert(EventQueue::Callback::storesInline<DeliverLocalEv>,
                  "local fill delivery must stay on the inline fast path");
    eq_->schedule(when, DeliverLocalEv{this, msg});
}

void
MemController::deliverLocalNow(const Message &msg)
{
    if (cache_->deliverFill(msg)) {
        --pendingLocalDeliveries_;
        return;
    }
    // Eviction path backed up; retry.
    --pendingLocalDeliveries_;
    deliverLocal(msg, eq_->curTick() + clock_.period());
    ++pendingLocalDeliveries_;
}

void
MemController::pushToNetwork(Message msg, Tick data_ready, bool delayed)
{
    Tick when = std::max(data_ready, eq_->curTick());
    // Outgoing request-class messages carry a phase epoch. Demand
    // requests and NAK retries take the original issue stamp (so a
    // retried request keeps its age); writebacks are stamped fresh.
    switch (msg.type) {
      case MsgType::ReqGet:
      case MsgType::ReqGetx:
      case MsgType::ReqUpgrade:
        if (msg.mshr < mshrPhase_.size())
            msg.phase = mshrPhase_[msg.mshr];
        break;
      case MsgType::ReqPut:
      case MsgType::ReqPutClean:
        msg.phase = curEpoch();
        break;
      default:
        break;
    }
    if (delayed) {
        // NAKed request being retried: the pending entry's retry count
        // (word2, maintained by the RplNak handler) selects the backoff
        // step, and crossing the starvation threshold is flagged once.
        auto retries = static_cast<unsigned>(
            ram_.read(proto::pendEntryAddr(self_, msg.mshr) + 16, 8));
        when += fault::retryBackoff(params_.retry, retries, rng_);
        if (faults_ != nullptr) {
            SMTP_TRACE_EVENT(faults_->trace(self_), eq_->curTick(),
                             trace::EventId::FaultRetryBackoff,
                             trace::packRetry(msg.addr, retries, msg.mshr,
                                              self_));
        }
        if (retries == params_.retry.starvationRetries) {
            ++starvationFlags;
            if (faults_ != nullptr) {
                SMTP_TRACE_EVENT(faults_->trace(self_), eq_->curTick(),
                                 trace::EventId::FaultStarvation,
                                 trace::packRetry(msg.addr, retries,
                                                  msg.mshr, self_));
            }
            if (checker_ != nullptr)
                checker_->onStarvation(self_, msg.addr, retries);
        }
    }
    eq_->schedule(when, NetDeliverEv{this, msg});
}

void
MemController::netDeliverNow(const Message &msg)
{
    --pendingDelayedSends_;
    auto vnet = proto::vnetOf(msg.type);
    if (!niOutQ_[vnet].tryPush(msg))
        niOutOverflow_.push_back(msg);
    drainNiOut();
}

void
MemController::drainNiOut()
{
    // One message per controller cycle leaves through the NI.
    if (niOutDrainScheduled_)
        return;
    bool any = false;
    for (auto &q : niOutQ_)
        any = any || !q.empty();
    if (!any)
        return;
    niOutDrainScheduled_ = true;
    eq_->schedule(clock_.edgeAfter(eq_->curTick()), DrainNiOutEv{this});
}

void
MemController::drainNiOutNow()
{
    niOutDrainScheduled_ = false;
    for (auto &q : niOutQ_) {
        if (!q.empty()) {
            net_->inject(q.pop());
            break;
        }
    }
    // Refill bounded queues from the overflow staging.
    while (!niOutOverflow_.empty()) {
        auto vnet = proto::vnetOf(niOutOverflow_.front().type);
        if (!niOutQ_[vnet].tryPush(niOutOverflow_.front()))
            break;
        niOutOverflow_.pop_front();
    }
    drainNiOut();
}

void
MemController::handlerDone(TransactionCtx *ctx_raw)
{
    if (traceEnabled()) {
        std::fprintf(stderr, "[%llu] n%u done %s addr=%llx\n",
                     static_cast<unsigned long long>(eq_->curTick()), self_,
                     std::string(msgTypeName(ctx_raw->msg.type)).c_str(),
                     static_cast<unsigned long long>(ctx_raw->msg.addr));
    }
    auto it = ctxs_.find(ctx_raw->id);
    SMTP_ASSERT(it != ctxs_.end(), "completion of a dead transaction");
    handlerLatency.sample(
        static_cast<double>(eq_->curTick() - it->second->dispatchTick));
    SMTP_TRACE_EVENT(trace_, eq_->curTick(), trace::EventId::McHandlerDone,
                     trace::packDone(eq_->curTick() -
                                         it->second->dispatchTick,
                                     it->second->msg.type));
    // A pending SDRAM read completion still references the context by
    // id; let it reap the entry when it lands.
    it->second->finished = true;
    if (!it->second->memReadStarted || it->second->memDone)
        ctxs_.erase(it);
    --inFlight_;
    eq_->scheduleIn(clock_.period(), PokeEv{this});
}

std::uint64_t
MemController::protoLoad(Addr a, unsigned bytes)
{
    return ram_.read(a, bytes);
}

void
MemController::protoStore(Addr a, std::uint64_t v, unsigned bytes)
{
    if (checker_ != nullptr)
        auditProtoStore(a, v);
    ram_.write(a, v, bytes);
}

void
MemController::auditProtoStore(Addr a, std::uint64_t v)
{
    using namespace proto;
    if (a >= protoDirBase && a < protoPendBase) {
        // A handler may only write the directory entry of the line it
        // was dispatched on.
        Addr line = dispatching_ != nullptr
                        ? lineAlign(dispatching_->msg.addr)
                        : invalidAddr;
        if (line == invalidAddr || a != map_->dirAddrOf(line)) {
            checker_->flag("node %u: stray directory write to %llx "
                           "(dispatched line %llx)",
                unsigned(self_), static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(line));
            return;
        }
        checker_->onDirWrite(self_, line, v);
    } else if (a >= protoPendBase && a < protoScratchBase) {
        Addr off = a - protoPendBase;
        auto node = static_cast<NodeId>(off / protoNodeStride);
        Addr within = off % protoNodeStride;
        if (node != self_) {
            checker_->flag("node %u wrote node %u's pending table (%llx)",
                unsigned(self_), unsigned(node),
                static_cast<unsigned long long>(a));
            return;
        }
        // Only word0 (the valid/type/ack word) carries checkable state.
        if (within % pend::entryBytes == 0)
            checker_->onPendWrite(self_,
                static_cast<unsigned>(within / pend::entryBytes), v);
    }
}

Addr
MemController::dirAddrOf(Addr line_addr)
{
    return map_->dirAddrOf(line_addr);
}

NodeId
MemController::homeOf(Addr line_addr)
{
    return map_->homeOf(line_addr);
}

std::uint64_t
MemController::probeResult()
{
    SMTP_ASSERT(dispatching_ != nullptr, "ldprobe outside dispatch");
    return dispatching_->probeBits;
}

// ---- Snapshot support --------------------------------------------------

namespace
{

void
putMsgQueue(snap::Ser &out, const FixedQueue<Message> &q)
{
    out.u64(q.size());
    for (const auto &m : q)
        proto::snapPut(out, m);
}

void
getMsgQueue(snap::Des &in, FixedQueue<Message> &q)
{
    q.clear();
    std::uint64_t n = in.count(8);
    if (in.ok() && n > q.capacity()) {
        in.fail("corrupt snapshot: queue occupancy exceeds capacity");
        return;
    }
    for (std::uint64_t i = 0; in.ok() && i < n; ++i)
        q.push(proto::snapGetMessage(in));
}

} // namespace

void
MemController::saveState(snap::Ser &out) const
{
    ram_.saveState(out);
    sdram_.saveState(out);
    executor_.saveState(out);
    rng_.saveState(out);

    putMsgQueue(out, lmiQ_);
    for (const auto &q : niInQ_)
        putMsgQueue(out, q);
    for (const auto &q : niOutQ_)
        putMsgQueue(out, q);
    out.seq(niOutOverflow_, [](snap::Ser &s, const Message &m) {
        proto::snapPut(s, m);
    });
    out.seq(deferQ_,
            [](snap::Ser &s, const std::pair<Tick, Message> &e) {
                s.u64(e.first);
                proto::snapPut(s, e.second);
            });
    out.u32(rrSource_);

    std::vector<std::uint64_t> ids;
    ids.reserve(ctxs_.size());
    for (const auto &[id, ctx] : ctxs_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    out.u64(ids.size());
    for (std::uint64_t id : ids) {
        const TransactionCtx &c = *ctxs_.at(id);
        out.u64(c.id);
        proto::snapPut(out, c.msg);
        proto::snapPut(out, c.trace);
        out.u64(c.dispatchTick);
        out.u64(c.probeReady);
        out.u64(c.probeBits);
        out.b(c.memReadStarted);
        out.b(c.memDone);
        out.u64(c.memWaiters.size());
        for (const auto &fn : c.memWaiters)
            snap::EventCodec::encode(out, fn);
        out.b(c.finished);
    }
    out.u64(nextCtxId_);
    out.u32(inFlight_);
    out.u32(pendingDelayedSends_);
    out.u32(pendingLocalDeliveries_);
    out.b(dispatchPollScheduled_);
    out.b(niOutDrainScheduled_);

    for (Tick t : mshrReady_)
        out.u64(t);
    for (std::uint32_t p : mshrPhase_)
        out.u32(p);
    for (std::uint32_t b : phaseBypass_)
        out.u32(b);

    handlersDispatched.saveState(out);
    msgsFromLmi.saveState(out);
    msgsFromNet.saveState(out);
    probesDeferred.saveState(out);
    naksSent.saveState(out);
    starvationFlags.saveState(out);
    invalsSent.saveState(out);
    phaseFloorTrips.saveState(out);
    lmiOccupancy.saveState(out);
    handlerLatency.saveState(out);
    reqQueueDelay.saveState(out);
    out.u64(tryDispatchCalls);
    out.u64(lastTryDispatch);
    out.u64(lastLmiEnqueue);
}

void
MemController::restoreState(snap::Des &in, const snap::EventCodec &codec)
{
    ram_.restoreState(in);
    sdram_.restoreState(in);
    executor_.restoreState(in);
    rng_.restoreState(in);

    getMsgQueue(in, lmiQ_);
    for (auto &q : niInQ_)
        getMsgQueue(in, q);
    for (auto &q : niOutQ_)
        getMsgQueue(in, q);
    niOutOverflow_.clear();
    std::uint64_t novf = in.count(8);
    for (std::uint64_t i = 0; in.ok() && i < novf; ++i)
        niOutOverflow_.push_back(proto::snapGetMessage(in));
    deferQ_.clear();
    std::uint64_t ndef = in.count(16);
    for (std::uint64_t i = 0; in.ok() && i < ndef; ++i) {
        Tick t = in.u64();
        deferQ_.emplace_back(t, proto::snapGetMessage(in));
    }
    rrSource_ = in.u32();

    ctxs_.clear();
    std::uint64_t nctx = in.count(32);
    for (std::uint64_t i = 0; in.ok() && i < nctx; ++i) {
        auto ctx = std::make_shared<TransactionCtx>();
        ctx->id = in.u64();
        ctx->msg = proto::snapGetMessage(in);
        ctx->trace = proto::snapGetTrace(in);
        ctx->dispatchTick = in.u64();
        ctx->probeReady = in.u64();
        ctx->probeBits = in.u64();
        ctx->memReadStarted = in.bl();
        ctx->memDone = in.bl();
        std::uint64_t nw = in.count(4);
        ctx->memWaiters.reserve(nw);
        for (std::uint64_t w = 0; in.ok() && w < nw; ++w)
            ctx->memWaiters.push_back(codec.decode(in));
        ctx->finished = in.bl();
        if (in.ok())
            ctxs_[ctx->id] = std::move(ctx);
    }
    nextCtxId_ = in.u64();
    inFlight_ = in.u32();
    pendingDelayedSends_ = in.u32();
    pendingLocalDeliveries_ = in.u32();
    dispatchPollScheduled_ = in.bl();
    niOutDrainScheduled_ = in.bl();

    for (Tick &t : mshrReady_)
        t = in.u64();
    for (std::uint32_t &p : mshrPhase_)
        p = in.u32();
    for (std::uint32_t &b : phaseBypass_)
        b = in.u32();

    handlersDispatched.restoreState(in);
    msgsFromLmi.restoreState(in);
    msgsFromNet.restoreState(in);
    probesDeferred.restoreState(in);
    naksSent.restoreState(in);
    starvationFlags.restoreState(in);
    invalsSent.restoreState(in);
    phaseFloorTrips.restoreState(in);
    lmiOccupancy.restoreState(in);
    handlerLatency.restoreState(in);
    reqQueueDelay.restoreState(in);
    tryDispatchCalls = in.u64();
    lastTryDispatch = in.u64();
    lastLmiEnqueue = in.u64();
}

void
MemController::registerSnapEvents(
    snap::EventCodec &codec, std::function<MemController *(NodeId)> resolve)
{
    auto mc_of = [resolve](snap::Des &in) -> MemController * {
        NodeId n = in.u16();
        MemController *mc = resolve(n);
        if (mc == nullptr)
            in.fail("controller event for unknown node");
        return mc;
    };
    codec.add(snap::evMcPoke,
              [mc_of](snap::Des &in) -> EventQueue::Callback {
                  MemController *mc = mc_of(in);
                  if (!mc)
                      return {};
                  return PokeEv{mc};
              });
    codec.add(snap::evMcDispatchPoll,
              [mc_of](snap::Des &in) -> EventQueue::Callback {
                  MemController *mc = mc_of(in);
                  if (!mc)
                      return {};
                  return DispatchPollEv{mc};
              });
    codec.add(snap::evMcCtxMemDone,
              [mc_of](snap::Des &in) -> EventQueue::Callback {
                  MemController *mc = mc_of(in);
                  std::uint64_t id = in.u64();
                  if (!mc)
                      return {};
                  return CtxMemDoneEv{mc, id};
              });
    codec.add(snap::evMcDeliverLocal,
              [mc_of](snap::Des &in) -> EventQueue::Callback {
                  MemController *mc = mc_of(in);
                  Message m = proto::snapGetMessage(in);
                  if (!mc)
                      return {};
                  return DeliverLocalEv{mc, m};
              });
    codec.add(snap::evMcNetDeliver,
              [mc_of](snap::Des &in) -> EventQueue::Callback {
                  MemController *mc = mc_of(in);
                  Message m = proto::snapGetMessage(in);
                  if (!mc)
                      return {};
                  return NetDeliverEv{mc, m};
              });
    codec.add(snap::evMcDrainNiOut,
              [mc_of](snap::Des &in) -> EventQueue::Callback {
                  MemController *mc = mc_of(in);
                  if (!mc)
                      return {};
                  return DrainNiOutEv{mc};
              });
    codec.add(snap::evMcMemWrite,
              [mc_of](snap::Des &in) -> EventQueue::Callback {
                  MemController *mc = mc_of(in);
                  Addr a = in.u64();
                  if (!mc)
                      return {};
                  return MemWriteEv{mc, a};
              });
    codec.add(snap::evMcPendingSend,
              [mc_of](snap::Des &in) -> EventQueue::Callback {
                  MemController *mc = mc_of(in);
                  std::uint8_t kind = in.u8();
                  Message m = proto::snapGetMessage(in);
                  bool delayed = in.bl();
                  if (!mc || kind > 3) {
                      in.fail("corrupt snapshot: pending-send kind");
                      return {};
                  }
                  return PendingSendEv{mc, kind, m, delayed};
              });
    codec.add(snap::evMcBypassDone,
              [mc_of, &codec](snap::Des &in) -> EventQueue::Callback {
                  MemController *mc = mc_of(in);
                  Addr a = in.u64();
                  bool write = in.bl();
                  EventQueue::Callback done = codec.decode(in);
                  if (!mc)
                      return {};
                  return BypassBusEv{mc, a, write, std::move(done)};
              });
}

} // namespace smtp
