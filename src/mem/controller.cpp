#include "controller.hpp"

#include <memory>
#include <unordered_map>

#include <cstdio>
#include <cstdlib>

#include "check/checker.hpp"
#include "common/log.hpp"
#include "protocol/directory.hpp"

namespace smtp
{

using proto::DataSrc;
using proto::Message;
using proto::MsgType;
using proto::SendTarget;

namespace
{

/** SMTP_TRACE is read once; per-message getenv showed up in profiles. */
bool
traceEnabled()
{
    static const bool on = std::getenv("SMTP_TRACE") != nullptr;
    return on;
}

/** Map a forwarded intervention to the cache probe it launches. */
MsgType
probeKindFor(MsgType t)
{
    switch (t) {
      case MsgType::FwdIntervSh: return MsgType::CcIntervSh;
      case MsgType::FwdIntervEx: return MsgType::CcIntervEx;
      case MsgType::FwdInval: return MsgType::CcInval;
      default: SMTP_PANIC("no probe for this message type");
    }
}

} // namespace

MemController::MemController(EventQueue &eq, NodeId self,
                             const McParams &params, const AddressMap &map,
                             const proto::HandlerImage &image,
                             CacheHierarchy &cache, Network &net)
    : eq_(&eq), self_(self), params_(params), clock_(params.freqMHz),
      map_(&map), image_(&image), cache_(&cache), net_(&net),
      sdram_(eq, params.sdram), executor_(image, *this),
      dirEntryBytes_(4), rng_(params.rngSeed + self * 7919),
      lmiQ_(params.lmiQueueDepth)
{
    for (auto &q : niInQ_)
        q.setCapacity(params.niInQueueDepth);
    for (auto &q : niOutQ_)
        q.setCapacity(params.niOutQueueDepth);
    mshrReady_.fill(0);
    executor_.boot(self);
    // The directory entry width comes from the handler image itself:
    // the load that follows a Dira always uses the format's width.
    dirEntryBytes_ = 0;
    for (std::size_t i = 0; i + 1 < image.code.size() && !dirEntryBytes_;
         ++i) {
        if (image.code[i].op == proto::POp::Dira &&
            image.code[i + 1].op == proto::POp::Ld) {
            dirEntryBytes_ = image.code[i + 1].memBytes;
        }
    }
    if (dirEntryBytes_ == 0)
        dirEntryBytes_ = 4;
}

bool
MemController::lmiEnqueue(const Message &msg)
{
    if (lmiQ_.full())
        return false;
    ++msgsFromLmi;
    lmiOccupancy.sample(static_cast<double>(lmiQ_.size()));
    // The bus crossing (large for the off-chip Base controller) is
    // charged by delaying visibility to the dispatch unit.
    Message m = msg;
    lmiQ_.push(m);
    lastLmiEnqueue = eq_->curTick();
    eq_->scheduleIn(params_.busLatency, [this] { tryDispatch(); });
    return true;
}

bool
MemController::niDeliver(const Message &msg)
{
    auto vnet = proto::vnetOf(msg.type);
    if (niInQ_[vnet].full())
        return false;
    ++msgsFromNet;
    niInQ_[vnet].push(msg);
    eq_->scheduleIn(clock_.period(), [this] { tryDispatch(); });
    return true;
}

void
MemController::bypassAccess(Addr addr, bool write, EventQueue::Callback done)
{
    eq_->scheduleIn(params_.busLatency, [this, addr, write,
                                         done = std::move(done)]() mutable {
        sdram_.access(addr, l2LineBytes, write, std::move(done));
    });
}

bool
MemController::popNextMessage(Message &out)
{
    // Deferred interventions whose retry time has come take precedence.
    if (!deferQ_.empty() && deferQ_.front().first <= eq_->curTick()) {
        out = deferQ_.front().second;
        deferQ_.pop_front();
        return true;
    }
    // Round-robin across LMI and the three coherence vnets.
    struct Source
    {
        FixedQueue<Message> *q;
        int vnet; // -1 for LMI
    };
    Source sources[4] = {
        {&lmiQ_, -1},
        {&niInQ_[proto::vnetReply], proto::vnetReply},
        {&niInQ_[proto::vnetForward], proto::vnetForward},
        {&niInQ_[proto::vnetRequest], proto::vnetRequest},
    };
    for (unsigned i = 0; i < 4; ++i) {
        auto &src = sources[(rrSource_ + i) % 4];
        if (!src.q->empty()) {
            rrSource_ = (rrSource_ + i + 1) % 4;
            out = src.q->pop();
            if (src.vnet >= 0)
                net_->poke(self_, static_cast<std::uint8_t>(src.vnet));
            return true;
        }
    }
    return false;
}

void
MemController::scheduleDispatchPoll()
{
    if (dispatchPollScheduled_ || deferQ_.empty())
        return;
    dispatchPollScheduled_ = true;
    Tick when = std::max(deferQ_.front().first, eq_->curTick() + 1);
    eq_->schedule(when, [this] {
        dispatchPollScheduled_ = false;
        tryDispatch();
    });
}

void
MemController::tryDispatch()
{
    ++tryDispatchCalls;
    lastTryDispatch = eq_->curTick();
    while (agent_ != nullptr && agent_->canAccept()) {
        Message msg;
        if (!popNextMessage(msg))
            break;
        dispatch(msg);
    }
    scheduleDispatchPoll();
}

void
MemController::dispatch(const Message &msg_in)
{
    Message msg = msg_in;
    Tick now = eq_->curTick();
    bool home_local = map_->homeOf(msg.addr) == self_;
    if (home_local) {
        msg.flags |= proto::flagHomeLocal;
        // FLASH-style dispatch: locally-homed processor requests index
        // their own handlers (no home-test branch in protocol code).
        msg.type = proto::localPiVariant(msg.type);
    }

    // Forwarded interventions chasing a grant still in flight to us are
    // replayed once the fill lands (Section 2 of DESIGN.md's race notes).
    if ((msg.type == MsgType::FwdIntervSh ||
         msg.type == MsgType::FwdIntervEx) &&
        cache_->probeWouldDefer(msg.addr)) {
        ++probesDeferred;
        SMTP_TRACE_EVENT(trace_, now, trace::EventId::McProbeDefer,
                         trace::packMsg(msg, msg.mshr));
        deferQ_.emplace_back(now + params_.deferRetry, msg);
        scheduleDispatchPoll();
        return;
    }

    if (traceEnabled()) {
        std::fprintf(stderr,
                     "[%llu] n%u dispatch %s addr=%llx src=%u req=%u "
                     "mshr=%u ack=%u\n",
                     static_cast<unsigned long long>(now), self_,
                     std::string(msgTypeName(msg.type)).c_str(),
                     static_cast<unsigned long long>(msg.addr), msg.src,
                     msg.requester, msg.mshr, msg.ackCount);
    }

    // Forced-NAK injection: the dispatch unit pretends the pending
    // table was busy and bounces the request without running a handler,
    // exercising the requester's retry/backoff path. Only the NAKable
    // request types are eligible — the same set a real busy home NAKs.
    if (faults_ != nullptr &&
        (msg.type == MsgType::ReqGet || msg.type == MsgType::ReqGetx ||
         msg.type == MsgType::ReqUpgrade) &&
        faults_->forceNak(self_)) {
        Message nak;
        nak.type = MsgType::RplNak;
        nak.addr = msg.addr;
        nak.src = self_;
        nak.dest = msg.src;
        nak.requester = msg.requester;
        nak.mshr = msg.mshr;
        ++naksSent;
        SMTP_TRACE_EVENT(trace_, now, trace::EventId::McNak,
                         trace::packMsg(nak, nak.mshr));
        SMTP_TRACE_EVENT(faults_->trace(), now,
                         trace::EventId::FaultForcedNak,
                         trace::packMsg(nak, nak.mshr));
        ++pendingDelayedSends_;
        pushToNetwork(nak, now, false);
        return;
    }

    SMTP_TRACE_EVENT(trace_, now, trace::EventId::McDispatch,
                     trace::packMsg(msg, msg.mshr));
    auto ctx = std::make_shared<TransactionCtx>();
    ctx->id = nextCtxId_++;
    ctx->msg = msg;
    ctx->dispatchTick = now;
    ctxs_[ctx->id] = ctx;
    ++inFlight_;

    // Hardware pre-actions.
    switch (msg.type) {
      case MsgType::FwdIntervSh:
      case MsgType::FwdIntervEx:
      case MsgType::FwdInval: {
        auto out = cache_->applyProbe(probeKindFor(msg.type), msg.addr);
        ctx->probeBits = (out.hit ? 1u : 0u) | (out.dirty ? 2u : 0u);
        ctx->probeReady = now + params_.probeLatency;
        break;
      }
      case MsgType::RplWbAck:
        // The race-free flavour; RplWbBusyAck leaves the tracker armed
        // for the stale intervention still chasing this node.
        cache_->clearWbPending(msg.addr);
        break;
      default:
        break;
    }

    if (proto::expectsMemoryData(msg.type) && home_local) {
        ctx->memReadStarted = true;
        auto c = ctx;
        sdram_.access(lineAlign(msg.addr), l2LineBytes, false, [this, c] {
            c->memDone = true;
            for (auto &fn : c->memWaiters)
                fn();
            c->memWaiters.clear();
        });
        if (msg.requester == self_) {
            // Keep the staged line available for a later CcFill issued
            // by the ack-collection handler (DataSrc::Buffer).
            std::uint8_t mshr = msg.mshr;
            ctx->memWaiters.push_back(
                [this, mshr] { stageMshrData(mshr, eq_->curTick()); });
        }
    }
    if (msg.type == MsgType::RplDataEx && msg.requester == self_) {
        // Carried exclusive data parks in the per-MSHR buffer until the
        // invalidation acks finish.
        stageMshrData(msg.mshr, now);
    }

    // Functional execution: directory and pending-table updates happen
    // now, in dispatch order — the architectural serialization point.
    if (checker_ != nullptr)
        checker_->onDispatch(self_, msg);
    dispatching_ = ctx.get();
    ctx->trace = executor_.run(msg);
    dispatching_ = nullptr;
    if (checker_ != nullptr)
        checker_->onHandlerExecuted(self_, ctx->trace);

    // Handlers record impossible protocol states in scratch word 0.
    Addr err_addr = proto::protoScratchBase +
                    static_cast<Addr>(self_) * proto::protoNodeStride +
                    proto::protoErrorOffset;
    std::uint64_t err = ram_.read(err_addr, 8);
    SMTP_ASSERT(err == 0,
                "protocol handler hit an impossible state (hdr %llx) "
                "at node %u for %s",
                static_cast<unsigned long long>(err), self_,
                std::string(msgTypeName(msg.type)).c_str());

    ++handlersDispatched;
    agent_->start(ctx.get());
}

void
MemController::stageMshrData(std::uint8_t mshr, Tick ready)
{
    SMTP_ASSERT(mshr < mshrReady_.size(), "mshr id out of range");
    mshrReady_[mshr] = ready;
}

Tick
MemController::mshrDataReady(std::uint8_t mshr) const
{
    SMTP_ASSERT(mshr < mshrReady_.size(), "mshr id out of range");
    return mshrReady_[mshr];
}

void
MemController::releaseSend(TransactionCtx *ctx_raw, unsigned idx)
{
    auto it = ctxs_.find(ctx_raw->id);
    SMTP_ASSERT(it != ctxs_.end(), "send for a dead transaction");
    auto ctx = it->second;
    SMTP_ASSERT(idx < ctx->trace.sends.size(), "send index out of range");
    const proto::SendRec &send = ctx->trace.sends[idx];
    if (traceEnabled()) {
        std::fprintf(stderr, "[%llu] n%u release %s addr=%llx\n",
                     static_cast<unsigned long long>(eq_->curTick()), self_,
                     std::string(msgTypeName(send.msg.type)).c_str(),
                     static_cast<unsigned long long>(send.msg.addr));
    }

    // A thunk that runs once the message's data payload is available.
    auto with_data = [this, ctx, send](std::function<void(Tick)> fn) {
        switch (send.dataSrc) {
          case DataSrc::None:
          case DataSrc::Carried:
            fn(eq_->curTick());
            return;
          case DataSrc::Probe:
            fn(std::max(eq_->curTick(), ctx->probeReady));
            return;
          case DataSrc::Buffer:
            fn(std::max(eq_->curTick(), mshrDataReady(send.msg.mshr)));
            return;
          case DataSrc::Memory:
            if (!ctx->memReadStarted) {
                // Lazy read (e.g. the PutClean writeback-race path).
                auto c = ctx;
                ctx->memReadStarted = true;
                sdram_.access(lineAlign(ctx->msg.addr), l2LineBytes, false,
                              [c] {
                                  c->memDone = true;
                                  for (auto &w : c->memWaiters)
                                      w();
                                  c->memWaiters.clear();
                              });
            }
            if (ctx->memDone) {
                fn(eq_->curTick());
            } else {
                ctx->memWaiters.push_back(
                    [this, fn] { fn(eq_->curTick()); });
            }
            return;
        }
    };

    switch (send.target) {
      case SendTarget::MemWrite:
        with_data([this, ctx](Tick ready) {
            eq_->schedule(std::max(ready, eq_->curTick()), [this, ctx] {
                sdram_.access(lineAlign(ctx->msg.addr), l2LineBytes, true);
            });
        });
        break;
      case SendTarget::Local:
        ++pendingLocalDeliveries_;
        with_data([this, msg = send.msg](Tick ready) {
            deliverLocal(msg, ready);
        });
        break;
      case SendTarget::Network:
        if (send.msg.type == MsgType::RplNak) {
            ++naksSent;
            SMTP_TRACE_EVENT(trace_, eq_->curTick(), trace::EventId::McNak,
                             trace::packMsg(send.msg, send.msg.mshr));
        }
        ++pendingDelayedSends_;
        with_data([this, msg = send.msg, delayed = send.delayed](Tick rdy) {
            pushToNetwork(msg, rdy, delayed);
        });
        break;
    }
}

void
MemController::deliverLocal(Message msg, Tick data_ready)
{
    Tick when = std::max(data_ready, eq_->curTick()) + params_.busLatency;
    auto deliver = [this, msg] {
        if (cache_->deliverFill(msg)) {
            --pendingLocalDeliveries_;
            return;
        }
        // Eviction path backed up; retry.
        --pendingLocalDeliveries_;
        deliverLocal(msg, eq_->curTick() + clock_.period());
        ++pendingLocalDeliveries_;
    };
    static_assert(EventQueue::Callback::storesInline<decltype(deliver)>,
                  "local fill delivery must stay on the inline fast path");
    eq_->schedule(when, std::move(deliver));
}

void
MemController::pushToNetwork(Message msg, Tick data_ready, bool delayed)
{
    Tick when = std::max(data_ready, eq_->curTick());
    if (delayed) {
        // NAKed request being retried: the pending entry's retry count
        // (word2, maintained by the RplNak handler) selects the backoff
        // step, and crossing the starvation threshold is flagged once.
        auto retries = static_cast<unsigned>(
            ram_.read(proto::pendEntryAddr(self_, msg.mshr) + 16, 8));
        when += fault::retryBackoff(params_.retry, retries, rng_);
        if (faults_ != nullptr) {
            SMTP_TRACE_EVENT(faults_->trace(), eq_->curTick(),
                             trace::EventId::FaultRetryBackoff,
                             trace::packRetry(msg.addr, retries, msg.mshr,
                                              self_));
        }
        if (retries == params_.retry.starvationRetries) {
            ++starvationFlags;
            if (faults_ != nullptr) {
                SMTP_TRACE_EVENT(faults_->trace(), eq_->curTick(),
                                 trace::EventId::FaultStarvation,
                                 trace::packRetry(msg.addr, retries,
                                                  msg.mshr, self_));
            }
            if (checker_ != nullptr)
                checker_->onStarvation(self_, msg.addr, retries);
        }
    }
    eq_->schedule(when, [this, msg] {
        --pendingDelayedSends_;
        auto vnet = proto::vnetOf(msg.type);
        if (!niOutQ_[vnet].tryPush(msg))
            niOutOverflow_.push_back(msg);
        drainNiOut();
    });
}

void
MemController::drainNiOut()
{
    // One message per controller cycle leaves through the NI.
    if (niOutDrainScheduled_)
        return;
    bool any = false;
    for (auto &q : niOutQ_)
        any = any || !q.empty();
    if (!any)
        return;
    niOutDrainScheduled_ = true;
    eq_->schedule(clock_.edgeAfter(eq_->curTick()), [this] {
        niOutDrainScheduled_ = false;
        for (auto &q : niOutQ_) {
            if (!q.empty()) {
                net_->inject(q.pop());
                break;
            }
        }
        // Refill bounded queues from the overflow staging.
        while (!niOutOverflow_.empty()) {
            auto vnet = proto::vnetOf(niOutOverflow_.front().type);
            if (!niOutQ_[vnet].tryPush(niOutOverflow_.front()))
                break;
            niOutOverflow_.pop_front();
        }
        drainNiOut();
    });
}

void
MemController::handlerDone(TransactionCtx *ctx_raw)
{
    if (traceEnabled()) {
        std::fprintf(stderr, "[%llu] n%u done %s addr=%llx\n",
                     static_cast<unsigned long long>(eq_->curTick()), self_,
                     std::string(msgTypeName(ctx_raw->msg.type)).c_str(),
                     static_cast<unsigned long long>(ctx_raw->msg.addr));
    }
    auto it = ctxs_.find(ctx_raw->id);
    SMTP_ASSERT(it != ctxs_.end(), "completion of a dead transaction");
    handlerLatency.sample(
        static_cast<double>(eq_->curTick() - it->second->dispatchTick));
    SMTP_TRACE_EVENT(trace_, eq_->curTick(), trace::EventId::McHandlerDone,
                     trace::packDone(eq_->curTick() -
                                         it->second->dispatchTick,
                                     it->second->msg.type));
    ctxs_.erase(it);
    --inFlight_;
    eq_->scheduleIn(clock_.period(), [this] { tryDispatch(); });
}

std::uint64_t
MemController::protoLoad(Addr a, unsigned bytes)
{
    return ram_.read(a, bytes);
}

void
MemController::protoStore(Addr a, std::uint64_t v, unsigned bytes)
{
    if (checker_ != nullptr)
        auditProtoStore(a, v);
    ram_.write(a, v, bytes);
}

void
MemController::auditProtoStore(Addr a, std::uint64_t v)
{
    using namespace proto;
    if (a >= protoDirBase && a < protoPendBase) {
        // A handler may only write the directory entry of the line it
        // was dispatched on.
        Addr line = dispatching_ != nullptr
                        ? lineAlign(dispatching_->msg.addr)
                        : invalidAddr;
        if (line == invalidAddr || a != map_->dirAddrOf(line)) {
            checker_->flag("node %u: stray directory write to %llx "
                           "(dispatched line %llx)",
                unsigned(self_), static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(line));
            return;
        }
        checker_->onDirWrite(self_, line, v);
    } else if (a >= protoPendBase && a < protoScratchBase) {
        Addr off = a - protoPendBase;
        auto node = static_cast<NodeId>(off / protoNodeStride);
        Addr within = off % protoNodeStride;
        if (node != self_) {
            checker_->flag("node %u wrote node %u's pending table (%llx)",
                unsigned(self_), unsigned(node),
                static_cast<unsigned long long>(a));
            return;
        }
        // Only word0 (the valid/type/ack word) carries checkable state.
        if (within % pend::entryBytes == 0)
            checker_->onPendWrite(self_,
                static_cast<unsigned>(within / pend::entryBytes), v);
    }
}

Addr
MemController::dirAddrOf(Addr line_addr)
{
    return map_->dirAddrOf(line_addr);
}

NodeId
MemController::homeOf(Addr line_addr)
{
    return map_->homeOf(line_addr);
}

std::uint64_t
MemController::probeResult()
{
    SMTP_ASSERT(dispatching_ != nullptr, "ldprobe outside dispatch");
    return dispatching_->probeBits;
}

} // namespace smtp
