#include "bpred.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace smtp
{

TournamentBpred::TournamentBpred(const BpredParams &params)
    : params_(params), localHistSize_(1u << params.localHistBits)
{
    threads_.resize(params.threads);
    for (auto &t : threads_) {
        t.localHist.assign(localHistSize_, 0);
        t.ras.assign(params.rasEntries, 0);
    }
    localPht_.assign(params.localPhtEntries, 3);   // weakly not-taken
    globalPht_.assign(1u << params.globalHistBits, 1);
    choice_.assign(params.choiceEntries, 1);       // weakly local: short
                                                   // biased branches train
                                                   // fastest per-PC
    btb_.resize(static_cast<std::size_t>(params.btbSets) * params.btbWays);
}

TournamentBpred::Prediction
TournamentBpred::predict(ThreadId tid, std::uint64_t pc, bool is_cond,
                         bool is_call, bool is_return,
                         std::uint64_t fallthrough)
{
    ++lookups;
    auto &t = threads_[tid];
    Prediction out;

    if (is_return) {
        // Pop the RAS.
        out.fromRas = true;
        out.taken = true;
        unsigned idx =
            (t.rasTop + params_.rasEntries - 1) % params_.rasEntries;
        out.target = t.ras[idx];
        t.rasTop = idx;
        return out;
    }

    if (is_cond) {
        ++condLookups;
        // Local component.
        std::uint16_t hist = t.localHist[localIdx(pc)];
        std::uint8_t lctr =
            localPht_[hist & (params_.localPhtEntries - 1)];
        bool local_taken = lctr >= (1u << (params_.localCtrBits - 1));
        // Global component.
        std::uint32_t ghist =
            t.globalHist & ((1u << params_.globalHistBits) - 1);
        bool global_taken = globalPht_[ghist] >= 2;
        // Choice.
        std::uint8_t ch = choice_[(ghist ^ (pc >> 2)) &
                                  (params_.choiceEntries - 1)];
        out.taken = (ch >= 2) ? global_taken : local_taken;
    } else {
        out.taken = true;
    }

    if (out.taken) {
        // Target from the BTB.
        unsigned set = static_cast<unsigned>((pc >> 2) &
                                             (params_.btbSets - 1));
        BtbEntry *base = &btb_[static_cast<std::size_t>(set) *
                               params_.btbWays];
        for (unsigned w = 0; w < params_.btbWays; ++w) {
            if (base[w].valid && base[w].pc == pc) {
                base[w].lru = ++btbStamp_;
                out.target = base[w].target;
                out.btbHit = true;
                break;
            }
        }
        if (!out.btbHit)
            ++btbMisses;
    } else {
        out.target = fallthrough;
        out.btbHit = true;
    }

    if (is_call) {
        t.ras[t.rasTop] = fallthrough;
        t.rasTop = (t.rasTop + 1) % params_.rasEntries;
    }
    return out;
}

void
TournamentBpred::update(ThreadId tid, std::uint64_t pc, bool taken,
                        std::uint64_t target, bool is_cond)
{
    auto &t = threads_[tid];
    if (is_cond) {
        std::uint16_t &hist = t.localHist[localIdx(pc)];
        std::uint8_t &lctr = localPht_[hist & (params_.localPhtEntries - 1)];
        std::uint32_t ghist =
            t.globalHist & ((1u << params_.globalHistBits) - 1);
        std::uint8_t &gctr = globalPht_[ghist];
        bool local_taken = lctr >= (1u << (params_.localCtrBits - 1));
        bool global_taken = gctr >= 2;
        std::uint8_t &ch =
            choice_[(ghist ^ (pc >> 2)) & (params_.choiceEntries - 1)];

        // Choice trains towards the component that was right.
        if (local_taken != global_taken) {
            if (global_taken == taken && ch < 3)
                ++ch;
            else if (local_taken == taken && ch > 0)
                --ch;
        }
        std::uint8_t lmax = (1u << params_.localCtrBits) - 1;
        if (taken) {
            if (lctr < lmax)
                ++lctr;
            if (gctr < 3)
                ++gctr;
        } else {
            if (lctr > 0)
                --lctr;
            if (gctr > 0)
                --gctr;
        }
        hist = static_cast<std::uint16_t>(((hist << 1) | taken) &
                                          (params_.localPhtEntries - 1));
        t.globalHist = (t.globalHist << 1) | taken;
    }

    if (taken) {
        // Install/refresh the BTB entry.
        unsigned set = static_cast<unsigned>((pc >> 2) &
                                             (params_.btbSets - 1));
        BtbEntry *base = &btb_[static_cast<std::size_t>(set) *
                               params_.btbWays];
        BtbEntry *victim = &base[0];
        for (unsigned w = 0; w < params_.btbWays; ++w) {
            if (base[w].valid && base[w].pc == pc) {
                base[w].target = target;
                base[w].lru = ++btbStamp_;
                return;
            }
            if (!base[w].valid) {
                victim = &base[w];
            } else if (victim->valid && base[w].lru < victim->lru) {
                victim = &base[w];
            }
        }
        victim->pc = pc;
        victim->target = target;
        victim->valid = true;
        victim->lru = ++btbStamp_;
    }
}

TournamentBpred::RasCheckpoint
TournamentBpred::rasCheckpoint(ThreadId tid) const
{
    const auto &t = threads_[tid];
    unsigned tos = (t.rasTop + params_.rasEntries - 1) % params_.rasEntries;
    return {t.rasTop, t.ras[tos]};
}

void
TournamentBpred::rasRestore(ThreadId tid, const RasCheckpoint &cp)
{
    auto &t = threads_[tid];
    t.rasTop = cp.top;
    unsigned tos = (t.rasTop + params_.rasEntries - 1) % params_.rasEntries;
    t.ras[tos] = cp.tosValue;
}

std::uint64_t
TournamentBpred::sizeBits() const
{
    std::uint64_t per_thread =
        static_cast<std::uint64_t>(localHistSize_) * params_.localHistBits +
        params_.globalHistBits;
    std::uint64_t shared =
        params_.localPhtEntries * params_.localCtrBits +
        (1ULL << params_.globalHistBits) * 2 + params_.choiceEntries * 2;
    return per_thread * threads_.size() + shared;
}

} // namespace smtp
