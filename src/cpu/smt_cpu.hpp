/**
 * @file
 * Out-of-order SMT pipeline (paper Section 2 / Table 2).
 *
 * Nine stages — fetch, decode, rename, issue, two operand-read stages,
 * execute, cache access, commit — modelled as a cycle-ticked front end
 * and commit stage with event-driven execution latencies. Key structures
 * follow the paper exactly:
 *
 *  - ICOUNT(2,8) fetch: two threads per cycle, eight slots, a
 *    predicted-taken branch ends a thread's run;
 *  - 8-entry decode and rename queues, shared but maintained as two
 *    logical queues (application / protocol) whose service priority
 *    alternates each cycle;
 *  - per-thread 128-entry active lists; 32-entry shared branch stack
 *    checkpointing the rename maps; per-thread 32-entry RAS;
 *  - shared physical register files (32*(threads+1)+96 of each kind),
 *    32-entry integer and FP queues, 64-entry unified LSQ with
 *    per-thread program-order memory issue, 32-entry store buffer
 *    draining at commit;
 *  - 21264-style tournament predictor; squash on mispredict with
 *    checkpoint restore and 8-per-cycle unmap cost;
 *  - sequential consistency via replay: an invalidation hitting a
 *    completed-but-ungraduated load forces it to re-execute at commit;
 *  - SMTp extensions: a protocol thread context fed by handler traces,
 *    PPCV-gated fetch, non-speculative uncached operations executed at
 *    the head of the active list, and one reserved instance of every
 *    deadlock-implicated resource (Section 2.2).
 */

#ifndef SMTP_CPU_SMT_CPU_HPP
#define SMTP_CPU_SMT_CPU_HPP

#include <array>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cache/cache_array.hpp"
#include "cache/hierarchy.hpp"
#include "common/types.hpp"
#include "cpu/bpred.hpp"
#include "cpu/inst.hpp"
#include "sim/clock.hpp"
#include "sim/eventq.hpp"
#include "sim/stats.hpp"
#include "trace/trace.hpp"

namespace smtp
{

struct CpuParams
{
    std::uint64_t freqMHz = 2000;
    unsigned appThreads = 1;
    bool protocolThread = false;   ///< SMTp: enable the extra context.

    unsigned fetchWidth = 8;
    unsigned fetchThreads = 2;
    unsigned decodeQueue = 8;
    unsigned renameQueue = 8;
    unsigned activeList = 128;     ///< Per thread.
    unsigned branchStack = 32;
    unsigned intRegs = 160;        ///< Machine layer sets 160/192/256.
    unsigned fpRegs = 160;
    unsigned intQueue = 32;
    unsigned fpQueue = 32;
    unsigned lsq = 64;
    unsigned intAlus = 6;          ///< The 7th ALU is the address unit.
    unsigned fpus = 3;
    unsigned commitWidth = 8;
    unsigned storeBuffer = 32;
    unsigned rasEntries = 32;

    Cycles readStages = 2;
    Cycles intMulLat = 6;
    Cycles intDivLat = 35;
    Cycles fpAddLat = 2;
    Cycles fpMulLat = 1;
    Cycles fpDivLat = 19;

    unsigned tlbEntries = 128;
    Cycles tlbMissPenalty = 40;

    // SMTp reserved resources (one each, Table 2).
    unsigned resDecode = 1;
    unsigned resRename = 1;
    unsigned resBranchStack = 1;
    unsigned resIntRegs = 1;
    unsigned resIntQueue = 1;
    unsigned resLsq = 1;
    unsigned resStoreBuffer = 1;

    /**
     * The special bit-manipulation ALU instructions (popcount / count
     * trailing zeros). When absent, each such protocol instruction
     * expands to this many plain ALU ops (Section 2.1 ablation).
     */
    bool bitAssistOps = true;
    unsigned bitAssistExpansion = 4;
};

struct LiveRegistry;

class SmtCpu
{
  public:
    struct DynInst;

    /** Hooks the SMTp protocol-thread agent installs (token = op.token). */
    struct ProtoHooks
    {
        std::function<void(const MicroOp &)> onSendG;
        std::function<Tick(const MicroOp &)> probeReadyAt;
        std::function<void(const MicroOp &)> onLdctxtRetired;
        std::function<void()> onLastOpFetched; ///< PPCV cleared.
    };

    SmtCpu(EventQueue &eq, const CpuParams &params, CacheHierarchy &cache,
           NodeId self = 0);
    ~SmtCpu();

    /** Total thread contexts (app + optional protocol). */
    unsigned numThreads() const { return static_cast<unsigned>(
        threads_.size()); }
    ThreadId protocolTid() const { return static_cast<ThreadId>(
        params_.appThreads); }

    void setSource(ThreadId tid, InstSource *source);
    void setProtoHooks(ProtoHooks hooks) { protoHooks_ = std::move(hooks); }

    /** Attach the node's pipeline telemetry buffer (stalls, stealing). */
    void setTrace(trace::TraceBuffer *buf) { trace_ = buf; }

    /** Begin ticking. */
    void start();

    /** New work may be available (protocol dispatch after idle). */
    void poke();

    bool appThreadsDone() const;
    bool idle() const;

    const ClockDomain &clock() const { return clock_; }
    Tick now() const { return eq_->curTick(); }

    // ---- Per-thread statistics --------------------------------------

    struct ThreadStats
    {
        Counter committed;
        Counter committedMem;
        Counter memStallCycles;
        Counter branches, condBranches, mispredicts;
        Counter squashedInsts;
        Counter squashCycles;       ///< Cycles retiring >=1 squashed inst.
        Counter replays;
        Counter wrongPathFetched;
        Counter itlbMisses, dtlbMisses;
    };

    const ThreadStats &threadStats(ThreadId tid) const;

    /** Protocol-thread live resource occupancy (Table 9). */
    struct ProtoOccupancy
    {
        PeakTracker branchStack;
        PeakTracker intRegs;
        PeakTracker intQueue;
        PeakTracker lsq;
    };

    ProtoOccupancy protoOccupancy;
    Counter cycles;
    Counter fetchedInsts;

    /** Dump pipeline state (wedge diagnosis). */
    void debugDump(std::FILE *out) const;

    // ---- Snapshot support --------------------------------------------
    //
    // Deferred completion events reference DynInsts by (pointer, uid);
    // snapshots persist the uid alone and restore resolves it against
    // the re-created instruction pool (a dead uid decodes to a no-op,
    // exactly matching the live generation check).

    struct TickEv
    {
        static constexpr std::uint32_t kSnapId = snap::evCpuTick;
        SmtCpu *c;
        void
        operator()() const
        {
            c->tickScheduled_ = false;
            c->tick();
        }
        void snapEncode(snap::Ser &s) const { s.u16(c->self_); }
    };

    struct CompleteEv
    {
        static constexpr std::uint32_t kSnapId = snap::evCpuCompleteInst;
        SmtCpu *c;
        DynInst *dyn;
        std::uint64_t uid;
        void operator()() const;
        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(c->self_);
            s.u64(uid);
        }
    };

    struct FetchDoneEv
    {
        static constexpr std::uint32_t kSnapId = snap::evCpuFetchDone;
        SmtCpu *c;
        ThreadId tid;
        Addr line;
        void operator()() const;
        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(c->self_);
            s.u8(tid);
            s.u64(line);
        }
    };

    struct TlbRetryEv
    {
        static constexpr std::uint32_t kSnapId = snap::evCpuTlbRetry;
        SmtCpu *c;
        DynInst *dyn;
        std::uint64_t uid;
        void operator()() const;
        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(c->self_);
            s.u64(uid);
        }
    };

    /** Cache fill for a load: start the operand-read stages. */
    struct LoadFillEv
    {
        static constexpr std::uint32_t kSnapId = snap::evCpuLoadFill;
        SmtCpu *c;
        DynInst *dyn;
        std::uint64_t uid;
        void operator()() const;
        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(c->self_);
            s.u64(uid);
        }
    };

    struct SbDrainEv
    {
        static constexpr std::uint32_t kSnapId = snap::evCpuSbDrain;
        SmtCpu *c;
        void operator()() const;
        void snapEncode(snap::Ser &s) const { s.u16(c->self_); }
    };

    struct ProtoSbDrainEv
    {
        static constexpr std::uint32_t kSnapId = snap::evCpuProtoSbDrain;
        SmtCpu *c;
        Addr key;
        void operator()() const;
        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(c->self_);
            s.u64(key);
        }
    };

    void saveState(snap::Ser &out) const;
    void restoreState(snap::Des &in);

    /** Live-instruction lookup during event decode (nullptr if dead). */
    DynInst *resolveUid(std::uint64_t uid) const;

    static void registerSnapEvents(snap::EventCodec &codec,
                                   std::function<SmtCpu *(NodeId)> resolve);

  private:
    struct ThreadState;
    struct Checkpoint;

    Tick cyc(Cycles c) const { return clock_.cyclesToTicks(c); }

    void tick();
    void scheduleTick();

    void fetchStage();
    unsigned fetchFromThread(ThreadState &t, unsigned max_slots);
    void decodeStage();
    void renameStage();
    bool renameOne(DynInst *dyn);
    void issueStage();
    void lsuIssue();
    bool tryMemAccess(DynInst *dyn);
    void completeInst(DynInst *dyn);
    void resolveBranch(DynInst *dyn);
    void squashAfter(ThreadState &t, std::uint64_t seq, int chkpt_idx);
    void commitStage();
    void execNonSpec(DynInst *dyn);
    void drainStoreBuffer();
    void sampleProtoOccupancy();
    void onLineInvalidated(Addr line);

    MicroOp synthWrongPath(ThreadState &t);

    bool operandsReady(const DynInst *dyn) const;
    std::uint16_t lookupMap(ThreadState &t, std::uint8_t logical) const;

    // TLB: fully-associative, LRU, 128 entries (Table 2).
    struct Tlb
    {
        explicit Tlb(unsigned entries) : cap(entries) {}
        bool access(Addr page);
        unsigned cap;
        std::vector<std::pair<Addr, std::uint64_t>> entries;
        std::uint64_t stamp = 0;
        Counter misses;
    };

    EventQueue *eq_;
    CpuParams params_;
    ClockDomain clock_;
    CacheHierarchy *cache_;
    NodeId self_;
    TournamentBpred bpred_;
    ProtoHooks protoHooks_;
    trace::TraceBuffer *trace_ = nullptr;

    /**
     * Registry resolving completion events to still-live instructions;
     * opaque so the header stays free of DynInst map details. Strictly
     * per-CPU state: sweep runs execute machines concurrently, so
     * nothing may live in process globals.
     */
    std::unique_ptr<LiveRegistry> live_;

    std::vector<std::unique_ptr<ThreadState>> threads_;

    // Front-end queues: two logical sections sharing one capacity.
    std::deque<DynInst *> decodeQApp_, decodeQProto_;
    std::deque<DynInst *> renameQApp_, renameQProto_;
    bool frontPriorityApp_ = true;

    // Physical registers.
    std::vector<std::uint8_t> intReady_, fpReady_;
    std::vector<std::uint16_t> intFree_, fpFree_;
    std::vector<ThreadId> intOwner_;

    // Branch stack.
    std::vector<Checkpoint> chkpts_;

    // Issue queues (kept age-ordered by insertion).
    std::deque<DynInst *> intQ_, fpQ_;
    unsigned lsqCount_ = 0;

    // Store buffer.
    struct SbEntry
    {
        Addr addr;
        ThreadId tid;
        bool protocolSpace;
    };
    std::deque<SbEntry> storeBuffer_;
    bool sbDrainBusy_ = false;
    bool sbProtoDrainBusy_ = false;

    std::uint64_t seqCounter_ = 0;
    unsigned rrCommit_ = 0;
    bool tickScheduled_ = false;
    bool started_ = false;

    Tlb itlb_, dtlb_;
};

} // namespace smtp

#endif // SMTP_CPU_SMT_CPU_HPP
