#include "smt_cpu.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "protocol/directory.hpp"

namespace smtp
{

/** One in-flight micro-op. */
struct SmtCpu::DynInst
{
    MicroOp op;
    ThreadId tid = 0;
    std::uint64_t seq = 0;
    std::uint64_t uid = 0;
    bool wrongPath = false;

    // Rename state.
    bool renamed = false;
    std::uint16_t psrc1 = 0xffff, psrc2 = 0xffff;
    bool psrc1Fp = false, psrc2Fp = false;
    std::uint16_t pdst = 0xffff, oldPdst = 0xffff;
    bool pdstFp = false;
    int chkpt = -1;

    // Execution state.
    bool icounted = true;
    bool issued = false;
    bool memAccessed = false;
    bool completed = false;
    bool squashed = false;
    bool mispredicted = false;
    bool predTaken = false;
    bool nonSpecStarted = false;
    bool replayTrap = false;
};

struct SmtCpu::Checkpoint
{
    bool valid = false;
    ThreadId tid = 0;
    std::uint64_t seq = 0;
    std::array<std::uint16_t, numLogicalRegs> map{};
    TournamentBpred::RasCheckpoint ras;
};

struct SmtCpu::ThreadState
{
    ThreadId tid = 0;
    bool isProtocol = false;
    InstSource *source = nullptr;

    std::deque<DynInst *> rob;        ///< Active list, oldest first.
    std::array<std::uint16_t, numLogicalRegs> map{};
    std::deque<DynInst *> lsqOrder;   ///< Memory ops in program order.

    bool fetchStalled = false;        ///< I-cache miss outstanding.
    Tick fetchResumeTick = 0;         ///< Squash/TLB fetch hold-off.
    Addr lastFetchLine = invalidAddr;
    bool wrongPathMode = false;
    std::uint64_t wrongPathPc = 0;
    unsigned wrongPathCnt = 0;
    unsigned icount = 0;
    std::uint8_t stallCause = trace::stallNone; ///< Open stall window.

    ThreadStats stats;
};

/**
 * Slab pool of DynInst records with generation-tagged liveness. Deferred
 * completion events capture (DynInst*, uid); the instruction is still
 * live iff the slot's uid matches, since free() zeroes it and alloc()
 * stamps a fresh one. This replaces a uid -> DynInst* hash map (and a
 * malloc/free per micro-op) that dominated the simulator's hot path.
 * The full definition lives here to keep the header free of DynInst
 * details; SmtCpu owns one through the opaque live_ member.
 */
struct LiveRegistry
{
    std::vector<std::unique_ptr<SmtCpu::DynInst[]>> chunks;
    std::vector<SmtCpu::DynInst *> freeList;
    std::uint64_t next = 1;

    /**
     * uid -> slot map built while restoring a snapshot; consulted by
     * the event decoders resolving deferred-completion handles.
     */
    std::unordered_map<std::uint64_t, SmtCpu::DynInst *> restoreMap;

    static constexpr std::size_t chunkSize = 256;

    SmtCpu::DynInst *
    alloc()
    {
        if (freeList.empty()) {
            chunks.push_back(
                std::make_unique<SmtCpu::DynInst[]>(chunkSize));
            SmtCpu::DynInst *base = chunks.back().get();
            for (std::size_t i = chunkSize; i-- > 0;)
                freeList.push_back(base + i);
        }
        SmtCpu::DynInst *d = freeList.back();
        freeList.pop_back();
        *d = SmtCpu::DynInst{};
        d->uid = next++;
        return d;
    }

    void
    free(SmtCpu::DynInst *d)
    {
        d->uid = 0; // Invalidate outstanding (ptr, uid) handles.
        freeList.push_back(d);
    }
};

SmtCpu::SmtCpu(EventQueue &eq, const CpuParams &params,
               CacheHierarchy &cache, NodeId self)
    : eq_(&eq), params_(params), clock_(params.freqMHz), cache_(&cache),
      self_(self),
      bpred_([&] {
          BpredParams bp;
          bp.threads = params.appThreads + (params.protocolThread ? 1 : 0);
          bp.rasEntries = params.rasEntries;
          return bp;
      }()),
      itlb_(params.tlbEntries), dtlb_(params.tlbEntries)
{
    live_ = std::make_unique<LiveRegistry>();

    unsigned nthreads = params.appThreads + (params.protocolThread ? 1 : 0);
    SMTP_ASSERT(params.intRegs >= 32 * nthreads + 32,
                "too few integer registers for the architected maps");
    intReady_.assign(params.intRegs, true);
    fpReady_.assign(params.fpRegs, true);
    intOwner_.assign(params.intRegs, invalidThread);
    for (unsigned r = params.intRegs; r-- > 0;)
        intFree_.push_back(static_cast<std::uint16_t>(r));
    for (unsigned r = params.fpRegs; r-- > 0;)
        fpFree_.push_back(static_cast<std::uint16_t>(r));

    chkpts_.resize(params.branchStack);

    for (unsigned t = 0; t < nthreads; ++t) {
        auto ts = std::make_unique<ThreadState>();
        ts->tid = static_cast<ThreadId>(t);
        ts->isProtocol = params.protocolThread && t == params.appThreads;
        // Architected register maps stay allocated for the thread's
        // lifetime (the paper's protocol boot sequence does the same
        // for the protocol context).
        for (unsigned l = 0; l < numLogicalRegs; ++l) {
            bool fp = l >= fpRegBase;
            auto &free_list = fp ? fpFree_ : intFree_;
            SMTP_ASSERT(!free_list.empty(), "register file too small");
            std::uint16_t p = free_list.back();
            free_list.pop_back();
            ts->map[l] = p;
            (fp ? fpReady_ : intReady_)[p] = true;
            if (!fp)
                intOwner_[p] = ts->tid;
        }
        threads_.push_back(std::move(ts));
    }

    cache_->setInvalHook([this](Addr line) { onLineInvalidated(line); });
}

SmtCpu::~SmtCpu()
{
    // In-flight DynInsts (ROB, front-end queues) live in the live_ pool
    // and are reclaimed wholesale with it.
}

void
SmtCpu::setSource(ThreadId tid, InstSource *source)
{
    threads_[tid]->source = source;
}

const SmtCpu::ThreadStats &
SmtCpu::threadStats(ThreadId tid) const
{
    return threads_[tid]->stats;
}

void
SmtCpu::debugDump(std::FILE *out) const
{
    std::fprintf(out, "cpu: cycles=%llu intFree=%zu fpFree=%zu lsq=%u "
                 "sb=%zu sbBusy=%d dq=%zu/%zu rq=%zu/%zu iq=%zu fq=%zu\n",
                 static_cast<unsigned long long>(cycles.value()),
                 intFree_.size(), fpFree_.size(), lsqCount_,
                 storeBuffer_.size(), sbDrainBusy_, decodeQApp_.size(),
                 decodeQProto_.size(), renameQApp_.size(),
                 renameQProto_.size(), intQ_.size(), fpQ_.size());
    for (const auto &t : threads_) {
        std::fprintf(out,
                     "  t%u%s rob=%zu icount=%u stalled=%d wp=%d "
                     "resume=%llu lsqOrd=%zu",
                     t->tid, t->isProtocol ? "(proto)" : "",
                     t->rob.size(), t->icount, t->fetchStalled,
                     t->wrongPathMode,
                     static_cast<unsigned long long>(t->fetchResumeTick),
                     t->lsqOrder.size());
        if (!t->rob.empty()) {
            const DynInst *h = t->rob.front();
            std::fprintf(out,
                         " head{cls=%u pc=%llx seq=%llu renamed=%d "
                         "issued=%d memAcc=%d comp=%d nonspec=%d "
                         "squash=%d}",
                         static_cast<unsigned>(h->op.cls),
                         static_cast<unsigned long long>(h->op.pc),
                         static_cast<unsigned long long>(h->seq),
                         h->renamed, h->issued, h->memAccessed,
                         h->completed, h->nonSpecStarted, h->squashed);
        }
        std::fprintf(out, "\n");
    }
}

void
SmtCpu::start()
{
    // Idempotent: a restored pipeline is already started and its
    // pending tick (if any) lives in the restored event queue.
    if (started_)
        return;
    started_ = true;
    scheduleTick();
}

void
SmtCpu::poke()
{
    if (started_)
        scheduleTick();
}

bool
SmtCpu::appThreadsDone() const
{
    for (unsigned t = 0; t < params_.appThreads; ++t) {
        const auto &ts = *threads_[t];
        if (ts.source == nullptr)
            continue;
        if (!ts.source->finished() || !ts.rob.empty())
            return false;
    }
    return true;
}

bool
SmtCpu::idle() const
{
    for (const auto &t : threads_) {
        if (!t->rob.empty() || t->wrongPathMode)
            return false;
        if (t->source != nullptr && !t->source->finished() &&
            t->source->hasNext())
            return false;
        if (t->fetchStalled)
            return false;
    }
    return decodeQApp_.empty() && decodeQProto_.empty() &&
           renameQApp_.empty() && renameQProto_.empty() &&
           storeBuffer_.empty() && !sbDrainBusy_;
}

void
SmtCpu::scheduleTick()
{
    if (tickScheduled_ || !started_)
        return;
    tickScheduled_ = true;
    static_assert(EventQueue::Callback::storesInline<TickEv>,
                  "the per-cycle pipeline event must not heap-allocate");
    eq_->schedule(clock_.edgeAfter(eq_->curTick()), TickEv{this});
}

void
SmtCpu::tick()
{
    ++cycles;
    commitStage();
    drainStoreBuffer();
    issueStage();
    lsuIssue();
    renameStage();
    decodeStage();
    fetchStage();
    if (params_.protocolThread)
        sampleProtoOccupancy();
    frontPriorityApp_ = !frontPriorityApp_;
    if (!idle())
        scheduleTick();
}

// --------------------------------------------------------------- fetch

bool
SmtCpu::Tlb::access(Addr page)
{
    for (auto &e : entries) {
        if (e.first == page) {
            e.second = ++stamp;
            return true;
        }
    }
    ++misses;
    if (entries.size() < cap) {
        entries.emplace_back(page, ++stamp);
    } else {
        auto lru = std::min_element(
            entries.begin(), entries.end(),
            [](const auto &a, const auto &b) { return a.second < b.second; });
        *lru = {page, ++stamp};
    }
    return false;
}

MicroOp
SmtCpu::synthWrongPath(ThreadState &t)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.pc = t.wrongPathPc;
    t.wrongPathPc += 4;
    unsigned k = t.wrongPathCnt++;
    op.dest = static_cast<std::uint8_t>(1 + (k % 20));
    op.src1 = static_cast<std::uint8_t>(1 + ((k + 7) % 20));
    op.src2 = static_cast<std::uint8_t>(1 + ((k + 13) % 20));
    return op;
}

void
SmtCpu::fetchStage()
{
    // ICOUNT: order runnable threads by in-flight count.
    std::vector<ThreadState *> order;
    for (auto &t : threads_) {
        if (t->source == nullptr)
            continue;
        if (t->fetchStalled || eq_->curTick() < t->fetchResumeTick)
            continue;
        if (!t->wrongPathMode &&
            (t->source->finished() || !t->source->hasNext()))
            continue;
        order.push_back(t.get());
    }
    std::sort(order.begin(), order.end(),
              [](const ThreadState *a, const ThreadState *b) {
                  if (a->icount != b->icount)
                      return a->icount < b->icount;
                  return a->tid < b->tid;
              });

    unsigned slots = params_.fetchWidth;
    unsigned threads_used = 0;
    for (auto *t : order) {
        if (threads_used >= params_.fetchThreads || slots == 0)
            break;
        unsigned n = fetchFromThread(*t, slots);
        if (n > 0 && t->isProtocol) {
            SMTP_TRACE_EVENT(trace_, eq_->curTick(),
                             trace::EventId::FetchSteal,
                             trace::packStall(
                                 t->tid, static_cast<std::uint8_t>(n)));
        }
        slots -= n;
        threads_used += n > 0;
    }
}

unsigned
SmtCpu::fetchFromThread(ThreadState &t, unsigned max_slots)
{
    unsigned fetched = 0;
    while (fetched < max_slots) {
        // Front-end queue space (one slot reserved for the protocol).
        unsigned dq_total = static_cast<unsigned>(decodeQApp_.size() +
                                                  decodeQProto_.size());
        unsigned cap = params_.decodeQueue;
        if (t.isProtocol) {
            if (dq_total >= cap)
                break;
        } else {
            unsigned res = params_.protocolThread ? params_.resDecode : 0;
            if (decodeQApp_.size() + res >= cap || dq_total >= cap)
                break;
        }

        MicroOp op;
        if (t.wrongPathMode) {
            op = synthWrongPath(t);
        } else {
            if (t.source->finished() || !t.source->hasNext())
                break;
            op = t.source->peek();
        }

        // I-cache (and ITLB) for the line being fetched. Wrong-path
        // fetch is synthesized and skips the memory system.
        if (!t.wrongPathMode) {
            Addr line = op.pc & ~static_cast<Addr>(l1iLineBytes - 1);
            if (line != t.lastFetchLine) {
                if (!t.isProtocol && !itlb_.access(pageAlign(op.pc))) {
                    ++t.stats.itlbMisses;
                    t.fetchResumeTick =
                        eq_->curTick() + cyc(params_.tlbMissPenalty);
                    break;
                }
                MemReq req;
                req.cmd = t.isProtocol ? MemCmd::ProtoIFetch
                                       : MemCmd::IFetch;
                req.addr = op.pc;
                req.done = FetchDoneEv{this, t.tid, line};
                auto outcome = cache_->access(req);
                if (outcome == CacheHierarchy::Outcome::Retry)
                    break;
                if (outcome == CacheHierarchy::Outcome::Pending) {
                    t.fetchStalled = true;
                    break;
                }
                t.lastFetchLine = line;
            }
        }

        // Build the dynamic instruction.
        auto *dyn = live_->alloc();
        dyn->op = op;
        dyn->tid = t.tid;
        dyn->seq = ++seqCounter_;
        dyn->wrongPath = t.wrongPathMode;
        ++t.icount;
        ++fetchedInsts;
        if (t.wrongPathMode)
            ++t.stats.wrongPathFetched;

        bool end_run = false;
        if (op.cls == OpClass::Branch && !t.wrongPathMode) {
            auto pred = bpred_.predict(t.tid, op.pc, op.isCondBranch,
                                       op.isCall, op.isReturn, op.pc + 4);
            dyn->predTaken = pred.taken;
            // A BTB miss on a correctly predicted-taken branch is a
            // redirect bubble, not a misprediction: decode computes the
            // target of direct branches.
            bool wrong = pred.taken != op.taken ||
                         (pred.taken && op.taken && pred.btbHit &&
                          pred.target != op.target);
            dyn->mispredicted = wrong;
            ++t.stats.branches;
            if (op.isCondBranch)
                ++t.stats.condBranches;
            if (wrong) {
                t.wrongPathMode = true;
                t.wrongPathPc = (pred.taken && pred.btbHit)
                                    ? pred.target
                                    : op.pc + 4;
                end_run = true;
            } else if (pred.taken) {
                // A predicted-taken branch ends the fetch run; a BTB
                // miss additionally costs a redirect bubble.
                end_run = true;
                if (!pred.btbHit) {
                    t.fetchResumeTick = eq_->curTick() + cyc(1);
                }
                t.lastFetchLine = invalidAddr;
            }
        }

        if (!dyn->wrongPath)
            t.source->consume();

        if (t.isProtocol)
            decodeQProto_.push_back(dyn);
        else
            decodeQApp_.push_back(dyn);
        ++fetched;
        if (end_run)
            break;
    }
    return fetched;
}

// ------------------------------------------------------ decode / rename

void
SmtCpu::decodeStage()
{
    unsigned budget = params_.fetchWidth;
    auto service = [&](std::deque<DynInst *> &src,
                       std::deque<DynInst *> &dst, bool proto) {
        while (budget > 0 && !src.empty()) {
            DynInst *dyn = src.front();
            if (dyn->squashed) {
                src.pop_front();
                continue;
            }
            unsigned total = static_cast<unsigned>(renameQApp_.size() +
                                                   renameQProto_.size());
            unsigned cap = params_.renameQueue;
            if (proto) {
                if (total >= cap)
                    break;
            } else {
                unsigned res =
                    params_.protocolThread ? params_.resRename : 0;
                if (renameQApp_.size() + res >= cap || total >= cap)
                    break;
            }
            src.pop_front();
            dst.push_back(dyn);
            --budget;
        }
    };
    if (frontPriorityApp_) {
        service(decodeQApp_, renameQApp_, false);
        service(decodeQProto_, renameQProto_, true);
    } else {
        service(decodeQProto_, renameQProto_, true);
        service(decodeQApp_, renameQApp_, false);
    }
}

std::uint16_t
SmtCpu::lookupMap(ThreadState &t, std::uint8_t logical) const
{
    return t.map[logical];
}

bool
SmtCpu::renameOne(DynInst *dyn)
{
    ThreadState &t = *threads_[dyn->tid];
    const MicroOp &op = dyn->op;
    bool proto = t.isProtocol;
    bool reserve = params_.protocolThread && !proto;

    if (t.rob.size() >= params_.activeList)
        return false;

    bool needs_int_dest =
        op.dest != regNone && !isFpReg(op.dest) && op.dest != 0;
    bool needs_fp_dest = op.dest != regNone && isFpReg(op.dest);
    if (needs_int_dest &&
        intFree_.size() <= (reserve ? params_.resIntRegs : 0))
        return false;
    if (needs_fp_dest && fpFree_.empty())
        return false;

    bool is_branch = op.cls == OpClass::Branch;
    if (is_branch) {
        unsigned free_chk = 0, app_used = 0;
        for (const auto &c : chkpts_) {
            if (!c.valid)
                ++free_chk;
            else if (!threads_[c.tid]->isProtocol)
                ++app_used;
        }
        if (free_chk == 0)
            return false;
        if (reserve && app_used + params_.resBranchStack >=
                           params_.branchStack)
            return false;
    }

    bool mem = isMemOp(op.cls);
    if (mem) {
        unsigned res = reserve ? params_.resLsq : 0;
        if (lsqCount_ >= params_.lsq - res && !proto)
            return false;
        if (lsqCount_ >= params_.lsq)
            return false;
    }

    bool int_q = op.cls == OpClass::IntAlu || op.cls == OpClass::IntMul ||
                 op.cls == OpClass::IntDiv || is_branch;
    bool fp_q = isFpOp(op.cls);
    if (int_q) {
        unsigned app_in_q = 0;
        for (auto *d : intQ_)
            app_in_q += !threads_[d->tid]->isProtocol && !d->squashed;
        if (!proto && reserve &&
            app_in_q + params_.resIntQueue >= params_.intQueue)
            return false;
        if (intQ_.size() >= params_.intQueue)
            return false;
    }
    if (fp_q && fpQ_.size() >= params_.fpQueue)
        return false;

    // All resources available: allocate.
    auto map_src = [&](std::uint8_t logical, std::uint16_t &psrc,
                       bool &is_fp) {
        if (logical == regNone) {
            psrc = 0xffff;
            return;
        }
        is_fp = isFpReg(logical);
        psrc = t.map[logical];
    };
    map_src(op.src1, dyn->psrc1, dyn->psrc1Fp);
    map_src(op.src2, dyn->psrc2, dyn->psrc2Fp);

    if (needs_int_dest || needs_fp_dest) {
        auto &free_list = needs_fp_dest ? fpFree_ : intFree_;
        std::uint16_t p = free_list.back();
        free_list.pop_back();
        dyn->pdst = p;
        dyn->pdstFp = needs_fp_dest;
        dyn->oldPdst = t.map[op.dest];
        t.map[op.dest] = p;
        (needs_fp_dest ? fpReady_ : intReady_)[p] = false;
        if (!needs_fp_dest)
            intOwner_[p] = dyn->tid;
    }

    if (is_branch) {
        for (unsigned i = 0; i < chkpts_.size(); ++i) {
            if (!chkpts_[i].valid) {
                chkpts_[i].valid = true;
                chkpts_[i].tid = dyn->tid;
                chkpts_[i].seq = dyn->seq;
                chkpts_[i].map = t.map;
                chkpts_[i].ras = bpred_.rasCheckpoint(dyn->tid);
                dyn->chkpt = static_cast<int>(i);
                break;
            }
        }
        SMTP_ASSERT(dyn->chkpt >= 0, "branch stack bookkeeping broken");
    }

    dyn->renamed = true;
    t.rob.push_back(dyn);

    if (mem) {
        ++lsqCount_;
        t.lsqOrder.push_back(dyn);
    } else if (int_q) {
        intQ_.push_back(dyn);
    } else if (fp_q) {
        fpQ_.push_back(dyn);
    } else {
        // Nop and non-speculative protocol ops wait in the active list.
        if (dyn->icounted) {
            dyn->icounted = false;
            --t.icount;
        }
        if (op.cls == OpClass::Nop)
            dyn->completed = true;
    }
    return true;
}

void
SmtCpu::renameStage()
{
    unsigned budget = params_.fetchWidth;
    auto service = [&](std::deque<DynInst *> &q) {
        while (budget > 0 && !q.empty()) {
            DynInst *dyn = q.front();
            if (dyn->squashed) {
                q.pop_front();
                continue;
            }
            if (!renameOne(dyn))
                break; // In-order within the section.
            q.pop_front();
            --budget;
        }
    };
    if (frontPriorityApp_) {
        service(renameQApp_);
        service(renameQProto_);
    } else {
        service(renameQProto_);
        service(renameQApp_);
    }
}

// ---------------------------------------------------------------- issue

bool
SmtCpu::operandsReady(const DynInst *dyn) const
{
    auto ready = [&](std::uint16_t p, bool fp) {
        if (p == 0xffff)
            return true;
        return fp ? static_cast<bool>(fpReady_[p])
                  : static_cast<bool>(intReady_[p]);
    };
    return ready(dyn->psrc1, dyn->psrc1Fp) &&
           ready(dyn->psrc2, dyn->psrc2Fp);
}

void
SmtCpu::issueStage()
{
    auto issue_from = [&](std::deque<DynInst *> &q, unsigned width) {
        unsigned issued = 0;
        for (auto it = q.begin(); it != q.end() && issued < width;) {
            DynInst *dyn = *it;
            if (dyn->squashed) {
                it = q.erase(it);
                continue;
            }
            if (!operandsReady(dyn)) {
                ++it;
                continue;
            }
            Cycles lat = 1;
            switch (dyn->op.cls) {
              case OpClass::IntMul: lat = params_.intMulLat; break;
              case OpClass::IntDiv: lat = params_.intDivLat; break;
              case OpClass::FpAdd: lat = params_.fpAddLat; break;
              case OpClass::FpMul: lat = params_.fpMulLat; break;
              case OpClass::FpDiv: lat = params_.fpDivLat; break;
              default: break;
            }
            dyn->issued = true;
            if (dyn->icounted) {
                dyn->icounted = false;
                --threads_[dyn->tid]->icount;
            }
            eq_->scheduleIn(cyc(params_.readStages + lat),
                            CompleteEv{this, dyn, dyn->uid});
            it = q.erase(it);
            ++issued;
        }
    };
    issue_from(intQ_, params_.intAlus);
    issue_from(fpQ_, params_.fpus);
}

bool
SmtCpu::tryMemAccess(DynInst *dyn)
{
    ThreadState &t = *threads_[dyn->tid];
    const MicroOp &op = dyn->op;
    std::uint64_t uid = dyn->uid;

    auto complete_in = [&](Cycles c) {
        eq_->scheduleIn(cyc(c), CompleteEv{this, dyn, uid});
    };

    // DTLB (application data space only).
    if (!t.isProtocol && !proto::isProtocolAddr(op.effAddr)) {
        if (!dtlb_.access(pageAlign(op.effAddr))) {
            ++t.stats.dtlbMisses;
            dyn->memAccessed = true;
            if (dyn->icounted) {
                dyn->icounted = false;
                --t.icount;
            }
            // Refill, then perform the access.
            eq_->scheduleIn(cyc(params_.tlbMissPenalty),
                            TlbRetryEv{this, dyn, uid});
            return true;
        }
    }

    switch (op.cls) {
      case OpClass::Store:
      case OpClass::PStore:
        // Stores "execute" once address and data are ready; the memory
        // system is touched when the store buffer drains after commit.
        dyn->memAccessed = true;
        complete_in(params_.readStages + 1);
        break;
      case OpClass::Prefetch:
      case OpClass::PrefetchEx: {
        MemReq req;
        req.cmd = op.cls == OpClass::Prefetch ? MemCmd::Prefetch
                                              : MemCmd::PrefetchEx;
        req.addr = op.effAddr;
        req.tid = dyn->tid;
        auto outcome = cache_->access(req);
        if (outcome == CacheHierarchy::Outcome::Retry)
            return false;
        dyn->memAccessed = true;
        complete_in(params_.readStages + 1);
        break;
      }
      case OpClass::Load:
      case OpClass::PLoad: {
        // Store-to-load forwarding: same thread older stores and the
        // store buffer, 8-byte granularity.
        Addr a8 = op.effAddr & ~7ULL;
        bool forwarded = false;
        for (auto *older : t.lsqOrder) {
            if (older == dyn)
                break;
            if ((older->op.cls == OpClass::Store ||
                 older->op.cls == OpClass::PStore) &&
                (older->op.effAddr & ~7ULL) == a8) {
                forwarded = true;
            }
        }
        if (!forwarded) {
            for (const auto &sb : storeBuffer_) {
                if (sb.tid == dyn->tid && (sb.addr & ~7ULL) == a8)
                    forwarded = true;
            }
        }
        if (forwarded) {
            dyn->memAccessed = true;
            complete_in(params_.readStages + 1);
            break;
        }
        MemReq req;
        req.cmd = t.isProtocol || proto::isProtocolAddr(op.effAddr)
                      ? MemCmd::ProtoLoad
                      : MemCmd::Load;
        req.addr = op.effAddr;
        req.tid = dyn->tid;
        req.done = LoadFillEv{this, dyn, uid};
        auto outcome = cache_->access(req);
        if (outcome == CacheHierarchy::Outcome::Retry)
            return false;
        dyn->memAccessed = true;
        break;
      }
      default:
        SMTP_PANIC("non-memory op in the LSU");
    }
    if (dyn->icounted) {
        dyn->icounted = false;
        --t.icount;
    }
    return true;
}

void
SmtCpu::lsuIssue()
{
    // One memory operation per cycle (one address-calculation ALU).
    for (unsigned i = 0; i < threads_.size(); ++i) {
        unsigned idx = (rrCommit_ + i) % threads_.size();
        ThreadState &t = *threads_[idx];
        // Program order among a thread's memory operations: only the
        // oldest not-yet-issued one may access the cache.
        DynInst *cand = nullptr;
        for (auto *d : t.lsqOrder) {
            if (!d->memAccessed) {
                cand = d;
                break;
            }
        }
        if (cand == nullptr || !operandsReady(cand))
            continue;
        if (tryMemAccess(cand))
            return; // LSU busy for this cycle.
    }
}

// ------------------------------------------------------------ complete

void
SmtCpu::completeInst(DynInst *dyn)
{
    if (dyn->squashed)
        return;
    dyn->completed = true;
    if (dyn->pdst != 0xffff) {
        (dyn->pdstFp ? fpReady_ : intReady_)[dyn->pdst] = true;
    }
    if (dyn->op.cls == OpClass::Branch)
        resolveBranch(dyn);
    scheduleTick();
}

void
SmtCpu::resolveBranch(DynInst *dyn)
{
    ThreadState &t = *threads_[dyn->tid];
    if (!dyn->wrongPath) {
        bpred_.update(dyn->tid, dyn->op.pc, dyn->op.taken, dyn->op.target,
                      dyn->op.isCondBranch);
    }
    if (dyn->mispredicted) {
        ++t.stats.mispredicts;
        squashAfter(t, dyn->seq, dyn->chkpt);
        t.wrongPathMode = false;
    }
    if (dyn->chkpt >= 0) {
        chkpts_[dyn->chkpt].valid = false;
        dyn->chkpt = -1;
    }
}

void
SmtCpu::squashAfter(ThreadState &t, std::uint64_t seq, int chkpt_idx)
{
    auto purge = [](std::deque<DynInst *> &q, const DynInst *needle) {
        for (auto it = q.begin(); it != q.end(); ++it) {
            if (*it == needle) {
                q.erase(it);
                return;
            }
        }
    };

    unsigned squashed = 0;
    while (!t.rob.empty() && t.rob.back()->seq > seq) {
        DynInst *dyn = t.rob.back();
        t.rob.pop_back();
        dyn->squashed = true;
        ++squashed;
        ++t.stats.squashedInsts;
        if (dyn->icounted) {
            dyn->icounted = false;
            --t.icount;
        }
        if (dyn->pdst != 0xffff) {
            auto &free_list = dyn->pdstFp ? fpFree_ : intFree_;
            free_list.push_back(dyn->pdst);
            if (!dyn->pdstFp)
                intOwner_[dyn->pdst] = invalidThread;
        }
        if (dyn->chkpt >= 0)
            chkpts_[dyn->chkpt].valid = false;
        if (isMemOp(dyn->op.cls)) {
            purge(t.lsqOrder, dyn);
            --lsqCount_;
        }
        purge(intQ_, dyn);
        purge(fpQ_, dyn);
        live_->free(dyn);
    }

    // Un-renamed instructions still in the front-end queues.
    auto flush_front = [&](std::deque<DynInst *> &q) {
        for (auto it = q.begin(); it != q.end();) {
            DynInst *dyn = *it;
            if (dyn->tid == t.tid && dyn->seq > seq) {
                if (dyn->icounted)
                    --t.icount;
                ++squashed;
                ++t.stats.squashedInsts;
                live_->free(dyn);
                it = q.erase(it);
            } else {
                ++it;
            }
        }
    };
    flush_front(t.isProtocol ? decodeQProto_ : decodeQApp_);
    flush_front(t.isProtocol ? renameQProto_ : renameQApp_);

    if (chkpt_idx >= 0) {
        SMTP_ASSERT(chkpts_[chkpt_idx].valid &&
                        chkpts_[chkpt_idx].tid == t.tid,
                    "checkpoint mix-up during recovery");
        t.map = chkpts_[chkpt_idx].map;
        bpred_.rasRestore(t.tid, chkpts_[chkpt_idx].ras);
    }

    // Unmapping proceeds eight instructions per cycle (Section 3), then
    // the front end refetches.
    Cycles penalty = 1 + divCeil(squashed, 8);
    t.fetchResumeTick =
        std::max(t.fetchResumeTick, eq_->curTick() + cyc(penalty));
    t.lastFetchLine = invalidAddr;
    if (squashed > 0)
        ++t.stats.squashCycles;
}

// --------------------------------------------------------------- commit

void
SmtCpu::execNonSpec(DynInst *dyn)
{
    dyn->nonSpecStarted = true;
    std::uint64_t uid = dyn->uid;
    auto complete_at = [&](Tick when) {
        eq_->schedule(std::max(when, eq_->curTick() + cyc(1)),
                      CompleteEv{this, dyn, uid});
    };
    switch (dyn->op.cls) {
      case OpClass::PSendH:
      case OpClass::PSwitch:
      case OpClass::PLdctxt:
        complete_at(eq_->curTick() + cyc(1));
        break;
      case OpClass::PSendG:
        if (protoHooks_.onSendG)
            protoHooks_.onSendG(dyn->op);
        complete_at(eq_->curTick() + cyc(1));
        break;
      case OpClass::PLdprobe: {
        Tick ready = protoHooks_.probeReadyAt
                         ? protoHooks_.probeReadyAt(dyn->op)
                         : eq_->curTick();
        complete_at(ready + cyc(1));
        break;
      }
      default:
        SMTP_PANIC("unexpected non-speculative op");
    }
}

void
SmtCpu::commitStage()
{
    // Memory-stall accounting (paper Section 4): a cycle counts as a
    // memory stall for a thread when its graduation is blocked with a
    // memory operation at the top of the active list.
    for (auto &tp : threads_) {
        ThreadState &t = *tp;
        DynInst *head = t.rob.empty() ? nullptr : t.rob.front();
        bool blocked =
            head != nullptr && isMemOp(head->op.cls) && !head->completed;
        if (blocked)
            ++t.stats.memStallCycles;
        if constexpr (trace::compiledIn) {
            if (trace_ != nullptr) {
                std::uint8_t cause =
                    !blocked ? trace::stallNone
                    : (head->op.cls == OpClass::Store ||
                       head->op.cls == OpClass::PStore)
                        ? trace::stallStore
                        : trace::stallLoad;
                if (cause != t.stallCause) {
                    if (t.stallCause != trace::stallNone)
                        trace_->record(eq_->curTick(),
                                       trace::EventId::ThreadStallEnd,
                                       trace::packStall(t.tid,
                                                        t.stallCause));
                    if (cause != trace::stallNone)
                        trace_->record(eq_->curTick(),
                                       trace::EventId::ThreadStallBegin,
                                       trace::packStall(t.tid, cause));
                    t.stallCause = cause;
                }
            }
        }
    }

    unsigned budget = params_.commitWidth;
    unsigned nthreads = static_cast<unsigned>(threads_.size());
    for (unsigned i = 0; i < nthreads && budget > 0; ++i) {
        ThreadState &t = *threads_[(rrCommit_ + i) % nthreads];
        while (budget > 0 && !t.rob.empty()) {
            DynInst *head = t.rob.front();

            if (isNonSpeculative(head->op.cls) && !head->nonSpecStarted &&
                operandsReady(head)) {
                execNonSpec(head);
                break;
            }
            if (!head->completed)
                break;

            if (head->replayTrap) {
                // SC replay: the line was invalidated under a completed
                // load; re-execute it and charge the refetch.
                head->replayTrap = false;
                head->completed = false;
                head->memAccessed = false;
                ++t.stats.replays;
                Cycles penalty =
                    1 + divCeil(static_cast<unsigned>(t.rob.size()), 8);
                t.fetchResumeTick = std::max(
                    t.fetchResumeTick, eq_->curTick() + cyc(penalty));
                break;
            }

            if (head->op.cls == OpClass::Store ||
                head->op.cls == OpClass::PStore) {
                bool proto_op = threads_[head->tid]->isProtocol;
                unsigned app_in_sb = 0;
                for (const auto &e : storeBuffer_)
                    app_in_sb += !threads_[e.tid]->isProtocol;
                unsigned res = params_.protocolThread && !proto_op
                                   ? params_.resStoreBuffer
                                   : 0;
                if (storeBuffer_.size() >= params_.storeBuffer ||
                    (!proto_op &&
                     app_in_sb + res >= params_.storeBuffer)) {
                    break; // Store buffer full; stall graduation.
                }
                storeBuffer_.push_back({head->op.effAddr, head->tid,
                                        proto::isProtocolAddr(
                                            head->op.effAddr)});
            }

            // Retire.
            if (isMemOp(head->op.cls)) {
                SMTP_ASSERT(!t.lsqOrder.empty() &&
                                t.lsqOrder.front() == head,
                            "LSQ order corrupted");
                t.lsqOrder.pop_front();
                --lsqCount_;
                ++t.stats.committedMem;
            }
            if (head->pdst != 0xffff && head->oldPdst != 0xffff) {
                auto &free_list = head->pdstFp ? fpFree_ : intFree_;
                free_list.push_back(head->oldPdst);
                if (!head->pdstFp)
                    intOwner_[head->oldPdst] = invalidThread;
            }
            ++t.stats.committed;
            if (head->op.cls == OpClass::PLdctxt &&
                protoHooks_.onLdctxtRetired) {
                protoHooks_.onLdctxtRetired(head->op);
            }
            t.rob.pop_front();
            live_->free(head);
            --budget;
        }
    }
    rrCommit_ = (rrCommit_ + 1) % nthreads;
}

void
SmtCpu::drainStoreBuffer()
{
    // Application stores drain in order through the head.
    if (!sbDrainBusy_ && !storeBuffer_.empty() &&
        !storeBuffer_.front().protocolSpace) {
        const SbEntry &e = storeBuffer_.front();
        MemReq req;
        req.cmd = MemCmd::Store;
        req.addr = e.addr;
        req.tid = e.tid;
        req.done = SbDrainEv{this};
        if (cache_->access(req) != CacheHierarchy::Outcome::Retry)
            sbDrainBusy_ = true;
    }
    // Protocol stores drain independently over the dedicated protocol
    // path — they may overtake a blocked application store. This is
    // what makes the reserved store-buffer entry (Section 2.2)
    // sufficient to break the deadlock cycle: an application store
    // whose exclusive grant needs the protocol thread cannot block the
    // protocol thread's own stores.
    if (!sbProtoDrainBusy_) {
        auto it = std::find_if(storeBuffer_.begin(), storeBuffer_.end(),
                               [](const SbEntry &e) {
                                   return e.protocolSpace;
                               });
        if (it == storeBuffer_.end())
            return;
        // Skip if the ordered head drain already covers it.
        if (it == storeBuffer_.begin() && sbDrainBusy_)
            return;
        MemReq req;
        req.cmd = MemCmd::ProtoStore;
        req.addr = it->addr;
        req.tid = it->tid;
        req.done = ProtoSbDrainEv{this, it->addr};
        if (cache_->access(req) != CacheHierarchy::Outcome::Retry)
            sbProtoDrainBusy_ = true;
    }
}

// ------------------------------------------------------------- hooks

void
SmtCpu::onLineInvalidated(Addr line)
{
    for (auto &tp : threads_) {
        ThreadState &t = *tp;
        if (t.isProtocol)
            continue;
        for (auto *d : t.lsqOrder) {
            if ((d->op.cls == OpClass::Load) && d->completed &&
                lineAlign(d->op.effAddr) == line) {
                d->replayTrap = true;
            }
        }
    }
}

// ---------------------------------------------------------- snapshots

void
SmtCpu::CompleteEv::operator()() const
{
    if (dyn != nullptr && dyn->uid == uid)
        c->completeInst(dyn);
}

void
SmtCpu::FetchDoneEv::operator()() const
{
    ThreadState &t = *c->threads_[tid];
    t.fetchStalled = false;
    t.lastFetchLine = line;
    c->scheduleTick();
}

void
SmtCpu::TlbRetryEv::operator()() const
{
    if (dyn == nullptr || dyn->uid != uid)
        return;
    dyn->memAccessed = false;
    c->tryMemAccess(dyn);
}

void
SmtCpu::LoadFillEv::operator()() const
{
    c->eq_->scheduleIn(c->cyc(c->params_.readStages),
                       CompleteEv{c, dyn, uid});
}

void
SmtCpu::SbDrainEv::operator()() const
{
    c->sbDrainBusy_ = false;
    SMTP_ASSERT(!c->storeBuffer_.empty() &&
                    !c->storeBuffer_.front().protocolSpace,
                "store buffer head changed under drain");
    c->storeBuffer_.pop_front();
    c->scheduleTick();
}

void
SmtCpu::ProtoSbDrainEv::operator()() const
{
    c->sbProtoDrainBusy_ = false;
    for (auto it = c->storeBuffer_.begin(); it != c->storeBuffer_.end();
         ++it) {
        if (it->protocolSpace && it->addr == key) {
            c->storeBuffer_.erase(it);
            break;
        }
    }
    c->scheduleTick();
}

namespace
{

void
putDyn(snap::Ser &s, const SmtCpu::DynInst &d)
{
    s.u64(d.uid);
    snapPut(s, d.op);
    s.u8(d.tid);
    s.u64(d.seq);
    s.b(d.wrongPath);
    s.b(d.renamed);
    s.u16(d.psrc1);
    s.u16(d.psrc2);
    s.b(d.psrc1Fp);
    s.b(d.psrc2Fp);
    s.u16(d.pdst);
    s.u16(d.oldPdst);
    s.b(d.pdstFp);
    s.i32(d.chkpt);
    s.b(d.icounted);
    s.b(d.issued);
    s.b(d.memAccessed);
    s.b(d.completed);
    s.b(d.squashed);
    s.b(d.mispredicted);
    s.b(d.predTaken);
    s.b(d.nonSpecStarted);
    s.b(d.replayTrap);
}

void
getDyn(snap::Des &in, SmtCpu::DynInst &d, unsigned nthreads,
       unsigned branch_stack)
{
    d.uid = in.u64();
    d.op = snapGetMicroOp(in);
    d.tid = in.u8();
    d.seq = in.u64();
    d.wrongPath = in.bl();
    d.renamed = in.bl();
    d.psrc1 = in.u16();
    d.psrc2 = in.u16();
    d.psrc1Fp = in.bl();
    d.psrc2Fp = in.bl();
    d.pdst = in.u16();
    d.oldPdst = in.u16();
    d.pdstFp = in.bl();
    d.chkpt = in.i32();
    d.icounted = in.bl();
    d.issued = in.bl();
    d.memAccessed = in.bl();
    d.completed = in.bl();
    d.squashed = in.bl();
    d.mispredicted = in.bl();
    d.predTaken = in.bl();
    d.nonSpecStarted = in.bl();
    d.replayTrap = in.bl();
    if (d.uid == 0 || d.tid >= nthreads || d.chkpt < -1 ||
        d.chkpt >= static_cast<int>(branch_stack)) {
        in.fail("corrupt snapshot: dynamic instruction out of range");
    }
}

void
putUidList(snap::Ser &s, const std::deque<SmtCpu::DynInst *> &q)
{
    s.u64(q.size());
    for (const SmtCpu::DynInst *d : q)
        s.u64(d->uid);
}

} // namespace

void
SmtCpu::saveState(snap::Ser &out) const
{
    // Live instruction pool, in chunk order (deterministic: chunks are
    // append-only and slots never move).
    std::uint64_t live_count = 0;
    for (const auto &chunk : live_->chunks) {
        for (std::size_t i = 0; i < LiveRegistry::chunkSize; ++i)
            live_count += chunk[i].uid != 0;
    }
    out.u64(live_count);
    for (const auto &chunk : live_->chunks) {
        for (std::size_t i = 0; i < LiveRegistry::chunkSize; ++i) {
            if (chunk[i].uid != 0)
                putDyn(out, chunk[i]);
        }
    }
    out.u64(live_->next);

    out.u64(seqCounter_);
    out.u32(rrCommit_);
    out.b(tickScheduled_);
    out.b(started_);
    out.b(frontPriorityApp_);
    out.u32(lsqCount_);

    out.u64(threads_.size());
    for (const auto &tp : threads_) {
        const ThreadState &t = *tp;
        putUidList(out, t.rob);
        for (std::uint16_t m : t.map)
            out.u16(m);
        putUidList(out, t.lsqOrder);
        out.b(t.fetchStalled);
        out.u64(t.fetchResumeTick);
        out.u64(t.lastFetchLine);
        out.b(t.wrongPathMode);
        out.u64(t.wrongPathPc);
        out.u32(t.wrongPathCnt);
        out.u32(t.icount);
        out.u8(t.stallCause);
        t.stats.committed.saveState(out);
        t.stats.committedMem.saveState(out);
        t.stats.memStallCycles.saveState(out);
        t.stats.branches.saveState(out);
        t.stats.condBranches.saveState(out);
        t.stats.mispredicts.saveState(out);
        t.stats.squashedInsts.saveState(out);
        t.stats.squashCycles.saveState(out);
        t.stats.replays.saveState(out);
        t.stats.wrongPathFetched.saveState(out);
        t.stats.itlbMisses.saveState(out);
        t.stats.dtlbMisses.saveState(out);
    }

    putUidList(out, decodeQApp_);
    putUidList(out, decodeQProto_);
    putUidList(out, renameQApp_);
    putUidList(out, renameQProto_);

    for (std::uint8_t r : intReady_)
        out.u8(r);
    for (std::uint8_t r : fpReady_)
        out.u8(r);
    out.u64(intFree_.size());
    for (std::uint16_t r : intFree_)
        out.u16(r);
    out.u64(fpFree_.size());
    for (std::uint16_t r : fpFree_)
        out.u16(r);
    for (ThreadId o : intOwner_)
        out.u8(o);

    out.u64(chkpts_.size());
    for (const Checkpoint &ck : chkpts_) {
        out.b(ck.valid);
        out.u8(ck.tid);
        out.u64(ck.seq);
        for (std::uint16_t m : ck.map)
            out.u16(m);
        out.u32(ck.ras.top);
        out.u64(ck.ras.tosValue);
    }

    putUidList(out, intQ_);
    putUidList(out, fpQ_);

    out.u64(storeBuffer_.size());
    for (const SbEntry &e : storeBuffer_) {
        out.u64(e.addr);
        out.u8(e.tid);
        out.b(e.protocolSpace);
    }
    out.b(sbDrainBusy_);
    out.b(sbProtoDrainBusy_);

    auto put_tlb = [&](const Tlb &tlb) {
        out.u64(tlb.entries.size());
        for (const auto &e : tlb.entries) {
            out.u64(e.first);
            out.u64(e.second);
        }
        out.u64(tlb.stamp);
        tlb.misses.saveState(out);
    };
    put_tlb(itlb_);
    put_tlb(dtlb_);

    bpred_.saveState(out);

    protoOccupancy.branchStack.saveState(out);
    protoOccupancy.intRegs.saveState(out);
    protoOccupancy.intQueue.saveState(out);
    protoOccupancy.lsq.saveState(out);
    cycles.saveState(out);
    fetchedInsts.saveState(out);
}

void
SmtCpu::restoreState(snap::Des &in)
{
    // Rebuild the instruction pool from scratch; every queue below
    // re-resolves its members through the uid map.
    live_ = std::make_unique<LiveRegistry>();
    std::uint64_t live_count = in.count(64);
    for (std::uint64_t i = 0; in.ok() && i < live_count; ++i) {
        DynInst *d = live_->alloc();
        getDyn(in, *d, static_cast<unsigned>(threads_.size()),
               params_.branchStack);
        if (!in.ok())
            return;
        if (!live_->restoreMap.emplace(d->uid, d).second) {
            in.fail("corrupt snapshot: duplicate instruction uid");
            return;
        }
    }
    live_->next = in.u64();

    auto get_uid_list = [&](std::deque<DynInst *> &q) {
        q.clear();
        std::uint64_t n = in.count(8);
        for (std::uint64_t i = 0; in.ok() && i < n; ++i) {
            DynInst *d = resolveUid(in.u64());
            if (d == nullptr) {
                in.fail("corrupt snapshot: queue references a dead "
                        "instruction");
                return;
            }
            q.push_back(d);
        }
    };

    seqCounter_ = in.u64();
    rrCommit_ = in.u32();
    tickScheduled_ = in.bl();
    started_ = in.bl();
    frontPriorityApp_ = in.bl();
    lsqCount_ = in.u32();

    if (in.u64() != threads_.size()) {
        in.fail("corrupt snapshot: thread count mismatch");
        return;
    }
    for (auto &tp : threads_) {
        ThreadState &t = *tp;
        get_uid_list(t.rob);
        for (std::uint16_t &m : t.map)
            m = in.u16();
        get_uid_list(t.lsqOrder);
        t.fetchStalled = in.bl();
        t.fetchResumeTick = in.u64();
        t.lastFetchLine = in.u64();
        t.wrongPathMode = in.bl();
        t.wrongPathPc = in.u64();
        t.wrongPathCnt = in.u32();
        t.icount = in.u32();
        t.stallCause = in.u8();
        t.stats.committed.restoreState(in);
        t.stats.committedMem.restoreState(in);
        t.stats.memStallCycles.restoreState(in);
        t.stats.branches.restoreState(in);
        t.stats.condBranches.restoreState(in);
        t.stats.mispredicts.restoreState(in);
        t.stats.squashedInsts.restoreState(in);
        t.stats.squashCycles.restoreState(in);
        t.stats.replays.restoreState(in);
        t.stats.wrongPathFetched.restoreState(in);
        t.stats.itlbMisses.restoreState(in);
        t.stats.dtlbMisses.restoreState(in);
    }

    get_uid_list(decodeQApp_);
    get_uid_list(decodeQProto_);
    get_uid_list(renameQApp_);
    get_uid_list(renameQProto_);

    for (std::uint8_t &r : intReady_)
        r = in.u8();
    for (std::uint8_t &r : fpReady_)
        r = in.u8();
    std::uint64_t nif = in.count(2);
    if (nif > params_.intRegs) {
        in.fail("corrupt snapshot: free-list overflow");
        return;
    }
    intFree_.clear();
    for (std::uint64_t i = 0; in.ok() && i < nif; ++i)
        intFree_.push_back(in.u16());
    std::uint64_t nff = in.count(2);
    if (nff > params_.fpRegs) {
        in.fail("corrupt snapshot: free-list overflow");
        return;
    }
    fpFree_.clear();
    for (std::uint64_t i = 0; in.ok() && i < nff; ++i)
        fpFree_.push_back(in.u16());
    for (ThreadId &o : intOwner_)
        o = in.u8();

    if (in.u64() != chkpts_.size()) {
        in.fail("corrupt snapshot: branch-stack size mismatch");
        return;
    }
    for (Checkpoint &ck : chkpts_) {
        ck.valid = in.bl();
        ck.tid = in.u8();
        ck.seq = in.u64();
        for (std::uint16_t &m : ck.map)
            m = in.u16();
        ck.ras.top = in.u32();
        ck.ras.tosValue = in.u64();
    }

    get_uid_list(intQ_);
    get_uid_list(fpQ_);

    std::uint64_t nsb = in.count(10);
    if (nsb > params_.storeBuffer) {
        in.fail("corrupt snapshot: store buffer overflow");
        return;
    }
    storeBuffer_.clear();
    for (std::uint64_t i = 0; in.ok() && i < nsb; ++i) {
        SbEntry e;
        e.addr = in.u64();
        e.tid = in.u8();
        e.protocolSpace = in.bl();
        storeBuffer_.push_back(e);
    }
    sbDrainBusy_ = in.bl();
    sbProtoDrainBusy_ = in.bl();

    auto get_tlb = [&](Tlb &tlb) {
        std::uint64_t n = in.count(16);
        if (n > tlb.cap) {
            in.fail("corrupt snapshot: TLB overflow");
            return;
        }
        tlb.entries.clear();
        for (std::uint64_t i = 0; in.ok() && i < n; ++i) {
            Addr page = in.u64();
            std::uint64_t stamp = in.u64();
            tlb.entries.emplace_back(page, stamp);
        }
        tlb.stamp = in.u64();
        tlb.misses.restoreState(in);
    };
    get_tlb(itlb_);
    get_tlb(dtlb_);

    bpred_.restoreState(in);

    protoOccupancy.branchStack.restoreState(in);
    protoOccupancy.intRegs.restoreState(in);
    protoOccupancy.intQueue.restoreState(in);
    protoOccupancy.lsq.restoreState(in);
    cycles.restoreState(in);
    fetchedInsts.restoreState(in);
}

SmtCpu::DynInst *
SmtCpu::resolveUid(std::uint64_t uid) const
{
    auto it = live_->restoreMap.find(uid);
    return it == live_->restoreMap.end() ? nullptr : it->second;
}

void
SmtCpu::registerSnapEvents(snap::EventCodec &codec,
                           std::function<SmtCpu *(NodeId)> resolve)
{
    auto cpu_of = [resolve](snap::Des &in) -> SmtCpu * {
        NodeId n = in.u16();
        SmtCpu *c = resolve(n);
        if (c == nullptr)
            in.fail("snapshot references an unknown cpu node");
        return c;
    };
    codec.add(snap::evCpuTick,
              [cpu_of](snap::Des &in) -> InlineCallback {
                  SmtCpu *c = cpu_of(in);
                  if (c == nullptr)
                      return {};
                  return TickEv{c};
              });
    codec.add(snap::evCpuCompleteInst,
              [cpu_of](snap::Des &in) -> InlineCallback {
                  SmtCpu *c = cpu_of(in);
                  std::uint64_t uid = in.u64();
                  if (c == nullptr)
                      return {};
                  return CompleteEv{c, c->resolveUid(uid), uid};
              });
    codec.add(snap::evCpuFetchDone,
              [cpu_of](snap::Des &in) -> InlineCallback {
                  SmtCpu *c = cpu_of(in);
                  ThreadId tid = in.u8();
                  Addr line = in.u64();
                  if (c == nullptr)
                      return {};
                  if (tid >= c->threads_.size()) {
                      in.fail("corrupt snapshot: fetch event thread out "
                              "of range");
                      return {};
                  }
                  return FetchDoneEv{c, tid, line};
              });
    codec.add(snap::evCpuTlbRetry,
              [cpu_of](snap::Des &in) -> InlineCallback {
                  SmtCpu *c = cpu_of(in);
                  std::uint64_t uid = in.u64();
                  if (c == nullptr)
                      return {};
                  return TlbRetryEv{c, c->resolveUid(uid), uid};
              });
    codec.add(snap::evCpuLoadFill,
              [cpu_of](snap::Des &in) -> InlineCallback {
                  SmtCpu *c = cpu_of(in);
                  std::uint64_t uid = in.u64();
                  if (c == nullptr)
                      return {};
                  return LoadFillEv{c, c->resolveUid(uid), uid};
              });
    codec.add(snap::evCpuSbDrain,
              [cpu_of](snap::Des &in) -> InlineCallback {
                  SmtCpu *c = cpu_of(in);
                  if (c == nullptr)
                      return {};
                  return SbDrainEv{c};
              });
    codec.add(snap::evCpuProtoSbDrain,
              [cpu_of](snap::Des &in) -> InlineCallback {
                  SmtCpu *c = cpu_of(in);
                  Addr key = in.u64();
                  if (c == nullptr)
                      return {};
                  return ProtoSbDrainEv{c, key};
              });
}

void
SmtCpu::sampleProtoOccupancy()
{
    ThreadId ptid = protocolTid();
    ThreadState &t = *threads_[ptid];
    if (t.rob.empty())
        return;
    unsigned chk = 0;
    for (const auto &c : chkpts_)
        chk += c.valid && c.tid == ptid;
    protoOccupancy.branchStack.observe(chk);

    unsigned regs = 0;
    for (auto owner : intOwner_)
        regs += owner == ptid;
    protoOccupancy.intRegs.observe(regs);

    unsigned iq = 0;
    for (auto *d : intQ_)
        iq += d->tid == ptid && !d->squashed;
    protoOccupancy.intQueue.observe(iq);

    unsigned lsq = static_cast<unsigned>(t.lsqOrder.size());
    protoOccupancy.lsq.observe(lsq);
}

} // namespace smtp
