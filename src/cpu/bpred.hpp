/**
 * @file
 * Branch prediction: Alpha 21264-style tournament predictor (paper
 * Section 3), BTB, and per-thread return-address stacks.
 *
 * Per-thread: local history table, global path history, choice state.
 * Shared: local and global pattern history tables (saturating
 * counters) — exactly the sharing split the paper describes. The global
 * history is updated non-speculatively (the paper does not update it
 * speculatively either); the RAS implements top-of-stack checkpointing
 * for mis-speculation recovery in the style of Skadron et al.
 */

#ifndef SMTP_CPU_BPRED_HPP
#define SMTP_CPU_BPRED_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/stats.hpp"
#include "snap/snap.hpp"

namespace smtp
{

struct BpredParams
{
    unsigned threads = 2;
    unsigned localHistBits = 10;  ///< 1K local histories per thread.
    unsigned localCtrBits = 3;    ///< 21264: 3-bit local counters.
    unsigned localPhtEntries = 1024;
    unsigned globalHistBits = 12;
    unsigned choiceEntries = 4096;
    unsigned btbSets = 256;
    unsigned btbWays = 4;
    unsigned rasEntries = 32;
};

class TournamentBpred
{
  public:
    explicit TournamentBpred(const BpredParams &params);

    struct Prediction
    {
        bool taken = false;
        std::uint64_t target = 0;
        bool btbHit = false;
        bool fromRas = false;
    };

    /**
     * Predict a branch for @p tid. Calls/returns manipulate the
     * thread's RAS; @p fallthrough is pushed for calls.
     */
    Prediction predict(ThreadId tid, std::uint64_t pc, bool is_cond,
                       bool is_call, bool is_return,
                       std::uint64_t fallthrough);

    /** Non-speculative update at branch resolution. */
    void update(ThreadId tid, std::uint64_t pc, bool taken,
                std::uint64_t target, bool is_cond);

    /** RAS checkpoint/restore for mis-speculation recovery. */
    struct RasCheckpoint
    {
        unsigned top = 0;
        std::uint64_t tosValue = 0;
    };

    RasCheckpoint rasCheckpoint(ThreadId tid) const;
    void rasRestore(ThreadId tid, const RasCheckpoint &cp);

    /** Approximate predictor storage, in bits (paper quotes ~86 Kb). */
    std::uint64_t sizeBits() const;

    Counter lookups, condLookups, mispredicts, btbMisses;

    // ---- Snapshot support (geometry is construction-time; state only) --

    void
    saveState(snap::Ser &out) const
    {
        out.u64(threads_.size());
        for (const auto &t : threads_) {
            for (std::uint16_t h : t.localHist)
                out.u16(h);
            out.u32(t.globalHist);
            for (std::uint64_t r : t.ras)
                out.u64(r);
            out.u32(t.rasTop);
        }
        for (std::uint8_t c : localPht_)
            out.u8(c);
        for (std::uint8_t c : globalPht_)
            out.u8(c);
        for (std::uint8_t c : choice_)
            out.u8(c);
        out.u64(btb_.size());
        for (const BtbEntry &e : btb_) {
            out.u64(e.pc);
            out.u64(e.target);
            out.b(e.valid);
            out.u64(e.lru);
        }
        out.u64(btbStamp_);
        lookups.saveState(out);
        condLookups.saveState(out);
        mispredicts.saveState(out);
        btbMisses.saveState(out);
    }

    void
    restoreState(snap::Des &in)
    {
        if (in.u64() != threads_.size()) {
            in.fail("corrupt snapshot: predictor thread count mismatch");
            return;
        }
        for (auto &t : threads_) {
            for (std::uint16_t &h : t.localHist)
                h = in.u16();
            t.globalHist = in.u32();
            for (std::uint64_t &r : t.ras)
                r = in.u64();
            t.rasTop = in.u32();
        }
        for (std::uint8_t &c : localPht_)
            c = in.u8();
        for (std::uint8_t &c : globalPht_)
            c = in.u8();
        for (std::uint8_t &c : choice_)
            c = in.u8();
        if (in.u64() != btb_.size()) {
            in.fail("corrupt snapshot: BTB geometry mismatch");
            return;
        }
        for (BtbEntry &e : btb_) {
            e.pc = in.u64();
            e.target = in.u64();
            e.valid = in.bl();
            e.lru = in.u64();
        }
        btbStamp_ = in.u64();
        lookups.restoreState(in);
        condLookups.restoreState(in);
        mispredicts.restoreState(in);
        btbMisses.restoreState(in);
    }

  private:
    struct ThreadPred
    {
        std::vector<std::uint16_t> localHist;
        std::uint32_t globalHist = 0;
        std::vector<std::uint64_t> ras;
        unsigned rasTop = 0; ///< Next push slot (count mod size).
    };

    struct BtbEntry
    {
        std::uint64_t pc = 0;
        std::uint64_t target = 0;
        bool valid = false;
        std::uint64_t lru = 0;
    };

    unsigned
    localIdx(std::uint64_t pc) const
    {
        return static_cast<unsigned>((pc >> 2) & (localHistSize_ - 1));
    }

    BpredParams params_;
    unsigned localHistSize_;
    std::vector<ThreadPred> threads_;
    // Shared pattern history tables.
    std::vector<std::uint8_t> localPht_;   ///< 3-bit counters.
    std::vector<std::uint8_t> globalPht_;  ///< 2-bit counters.
    std::vector<std::uint8_t> choice_;     ///< 2-bit: 0 local, 3 global.
    std::vector<BtbEntry> btb_;
    std::uint64_t btbStamp_ = 0;
};

} // namespace smtp

#endif // SMTP_CPU_BPRED_HPP
