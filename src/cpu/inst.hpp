/**
 * @file
 * Micro-operation and dynamic-instruction definitions for the SMT
 * pipeline.
 *
 * The pipeline consumes MicroOps from per-thread InstSources: workload
 * generators for application threads and (under SMTp) the protocol
 * thread's handler traces. A MicroOp carries its *resolved* outcome
 * (branch direction/target, effective address) because smtp-sim executes
 * functionally at generation time and replays for timing; the pipeline
 * still predicts, mis-speculates, squashes and replays against those
 * outcomes (DESIGN.md substitution 2).
 */

#ifndef SMTP_CPU_INST_HPP
#define SMTP_CPU_INST_HPP

#include <cstdint>

#include "common/types.hpp"
#include "snap/snap.hpp"

namespace smtp
{

enum class OpClass : std::uint8_t
{
    Nop,
    IntAlu,   ///< 1 cycle.
    IntMul,   ///< 6 cycles (R10000).
    IntDiv,   ///< 35 cycles.
    FpAdd,    ///< 2 cycles.
    FpMul,    ///< 1 cycle, fully pipelined (paper Table 2).
    FpDiv,    ///< 12 (SP) / 19 (DP); we model DP.
    Load,
    Store,
    Prefetch,    ///< Non-binding shared prefetch (hint).
    PrefetchEx,  ///< Prefetch-exclusive.
    Branch,
    // Protocol thread micro-ops (SMTp).
    PLoad,    ///< Protocol-space load through the shared caches.
    PStore,
    PSendH,   ///< Uncached store staging the outgoing header.
    PSendG,   ///< Uncached store firing the send; non-speculative.
    PSwitch,  ///< Uncached load of the next request's header.
    PLdctxt,  ///< Uncached load of the next address; ends the handler.
    PLdprobe, ///< Uncached load of the L2 probe outcome.
};

constexpr bool
isMemOp(OpClass c)
{
    switch (c) {
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::Prefetch:
      case OpClass::PrefetchEx:
      case OpClass::PLoad:
      case OpClass::PStore:
        return true;
      default:
        return false;
    }
}

/** Uncached protocol operations with side effects: execute at retire. */
constexpr bool
isNonSpeculative(OpClass c)
{
    switch (c) {
      case OpClass::PSendH:
      case OpClass::PSendG:
      case OpClass::PSwitch:
      case OpClass::PLdctxt:
      case OpClass::PLdprobe:
        return true;
      default:
        return false;
    }
}

constexpr bool
isFpOp(OpClass c)
{
    return c == OpClass::FpAdd || c == OpClass::FpMul ||
           c == OpClass::FpDiv;
}

/** Logical register identifiers: 0-31 integer, 32-63 floating point. */
constexpr std::uint8_t regNone = 0xff;
constexpr std::uint8_t fpRegBase = 32;
constexpr unsigned numLogicalRegs = 64;

constexpr bool
isFpReg(std::uint8_t r)
{
    return r != regNone && r >= fpRegBase;
}

struct MicroOp
{
    std::uint64_t pc = 0;
    OpClass cls = OpClass::Nop;
    std::uint8_t src1 = regNone;
    std::uint8_t src2 = regNone;
    std::uint8_t dest = regNone;

    Addr effAddr = invalidAddr;   ///< Memory ops.
    std::uint8_t memBytes = 8;

    // Branch semantics (cls == Branch).
    bool isCondBranch = false;
    bool isCall = false;
    bool isReturn = false;
    bool taken = false;           ///< Resolved direction.
    std::uint64_t target = 0;     ///< Resolved target.

    // Protocol plumbing.
    std::int32_t sendIdx = -1;    ///< PSendG: index into the trace sends.
    bool endOfHandler = false;    ///< PLdctxt.

    std::uint64_t token = 0;      ///< Source-private bookkeeping.
};

// ---- Snapshot codec (in-flight micro-ops survive checkpoints) --------

inline void
snapPut(snap::Ser &s, const MicroOp &op)
{
    s.u64(op.pc);
    s.u8(static_cast<std::uint8_t>(op.cls));
    s.u8(op.src1);
    s.u8(op.src2);
    s.u8(op.dest);
    s.u64(op.effAddr);
    s.u8(op.memBytes);
    s.b(op.isCondBranch);
    s.b(op.isCall);
    s.b(op.isReturn);
    s.b(op.taken);
    s.u64(op.target);
    s.i32(op.sendIdx);
    s.b(op.endOfHandler);
    s.u64(op.token);
}

inline MicroOp
snapGetMicroOp(snap::Des &d)
{
    MicroOp op;
    op.pc = d.u64();
    std::uint8_t cls = d.u8();
    if (cls > static_cast<std::uint8_t>(OpClass::PLdprobe)) {
        d.fail("corrupt snapshot: op class out of range");
        return op;
    }
    op.cls = static_cast<OpClass>(cls);
    op.src1 = d.u8();
    op.src2 = d.u8();
    op.dest = d.u8();
    op.effAddr = d.u64();
    op.memBytes = d.u8();
    op.isCondBranch = d.bl();
    op.isCall = d.bl();
    op.isReturn = d.bl();
    op.taken = d.bl();
    op.target = d.u64();
    op.sendIdx = d.i32();
    op.endOfHandler = d.bl();
    op.token = d.u64();
    return op;
}

/**
 * Per-thread instruction supplier. The pipeline peeks the next
 * correct-path micro-op, decides what the front end does with it, and
 * consumes it once fetched. Sources are never rewound: on a mispredicted
 * branch the pipeline synthesizes wrong-path micro-ops internally and
 * resumes consuming after recovery.
 */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /** Is a micro-op available right now? (May pump a generator.) */
    virtual bool hasNext() = 0;

    /** The next micro-op; stable until consume(). */
    virtual const MicroOp &peek() = 0;

    virtual void consume() = 0;

    /** The thread has terminated (never supplies again). */
    virtual bool finished() = 0;

    /**
     * Buffered mode (sharded execution): the source must not generate
     * new micro-ops from inside hasNext()/peek() — generation mutates
     * shared workload state (functional memory, sync primitives) and is
     * only legal in the single-threaded barrier phase, via refill().
     * Sources without generator state ignore both hooks.
     */
    virtual void setBuffered(bool) {}

    /** Barrier-phase top-up to roughly @p target buffered micro-ops. */
    virtual void refill(std::size_t) {}

    /**
     * Barrier-phase clock: the machine publishes the current tick before
     * each refill so generators can stamp work items (request birth /
     * retire times) at window granularity. Ignored by sources without
     * generator state.
     */
    virtual void setNow(Tick) {}
};

} // namespace smtp

#endif // SMTP_CPU_INST_HPP
