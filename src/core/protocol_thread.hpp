/**
 * @file
 * The SMTp protocol thread (the paper's core contribution, Section 2).
 *
 * Implements ProtocolAgent by turning each dispatched handler trace into
 * a stream of micro-ops fetched by the protocol context of the main SMT
 * pipeline, and InstSource as that stream:
 *
 *  - PPCV ("Protocol PC Valid"): hasNext() is true exactly while a
 *    dispatched handler still has unfetched micro-ops; fetching the
 *    trailing `ldctxt` clears it (the fetcher's quick-compare logic);
 *  - handler dispatch: without Look-Ahead Scheduling the next handler's
 *    PC is handed out only after the previous handler's `ldctxt`
 *    graduates; with LAS (Section 2.3) it is handed out as soon as the
 *    previous handler has finished *fetching*, allowing two handlers in
 *    the pipe (one look-ahead handler);
 *  - the uncached operations execute non-speculatively at the head of
 *    the active list: `sendg` releases its message, `ldprobe` waits for
 *    the dispatch unit's L2 probe, and `ldctxt` completes the handler;
 *  - the special bit-manipulation ALU instructions can be disabled, in
 *    which case each popcount/ctz expands into a short dependent ALU
 *    sequence (the Section 2.1 ablation).
 */

#ifndef SMTP_CORE_PROTOCOL_THREAD_HPP
#define SMTP_CORE_PROTOCOL_THREAD_HPP

#include <deque>
#include <vector>

#include "cpu/smt_cpu.hpp"
#include "mem/agent.hpp"
#include "mem/controller.hpp"

namespace smtp
{

struct ProtocolThreadParams
{
    bool lookAheadScheduling = true;
    bool bitAssistOps = true;
    unsigned bitAssistExpansion = 4;
};

class ProtocolThread : public ProtocolAgent, public InstSource
{
  public:
    ProtocolThread(EventQueue &eq, SmtCpu &cpu, MemController &mc,
                   const ProtocolThreadParams &params);

    // ---- ProtocolAgent ----------------------------------------------

    bool canAccept() const override;
    void start(TransactionCtx *ctx) override;
    Tick busyTicks() const override { return busyTicks_; }

    // ---- InstSource (the protocol context's fetch stream) ------------

    bool hasNext() override;
    const MicroOp &peek() override;
    void consume() override;
    bool finished() override { return false; }

    /** Attach the node's protocol telemetry buffer. */
    void setTrace(trace::TraceBuffer *buf) { trace_ = buf; }

    // ---- Snapshot support --------------------------------------------
    //
    // Handlers are re-derived from their (serialized) transaction
    // contexts: convertTrace is a pure function of the trace, so only
    // the ctx id and the fetch cursor persist. No events to register —
    // the protocol thread schedules nothing itself.

    void saveState(snap::Ser &out) const;
    void restoreState(snap::Des &in);

    // ---- Stats --------------------------------------------------------

    Counter handlersStarted;
    Counter lookAheadStarts;  ///< Handlers dispatched into the LAS slot.
    Counter opsSupplied;

  private:
    struct Handler
    {
        TransactionCtx *ctx = nullptr;
        std::vector<MicroOp> ops;
        std::size_t fetchIdx = 0;

        bool fullyFetched() const { return fetchIdx >= ops.size(); }
    };

    void convertTrace(Handler &h);

    // CPU hook targets.
    void onSendG(const MicroOp &op);
    Tick probeReadyAt(const MicroOp &op);
    void onLdctxtRetired(const MicroOp &op);

    TransactionCtx *ctxForToken(std::uint64_t token);

    EventQueue *eq_;
    SmtCpu *cpu_;
    MemController *mc_;
    ProtocolThreadParams params_;

    std::deque<Handler> handlers_; ///< Front = oldest (executing) handler.
    trace::TraceBuffer *trace_ = nullptr;
    Tick busyTicks_ = 0;
    Tick busyStart_ = 0;
};

} // namespace smtp

#endif // SMTP_CORE_PROTOCOL_THREAD_HPP
