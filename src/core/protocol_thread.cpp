#include "protocol_thread.hpp"

#include "common/log.hpp"
#include "protocol/directory.hpp"

namespace smtp
{

using proto::POp;

ProtocolThread::ProtocolThread(EventQueue &eq, SmtCpu &cpu,
                               MemController &mc,
                               const ProtocolThreadParams &params)
    : eq_(&eq), cpu_(&cpu), mc_(&mc), params_(params)
{
    mc.setAgent(this);
    SmtCpu::ProtoHooks hooks;
    hooks.onSendG = [this](const MicroOp &op) { onSendG(op); };
    hooks.probeReadyAt = [this](const MicroOp &op) {
        return probeReadyAt(op);
    };
    hooks.onLdctxtRetired = [this](const MicroOp &op) {
        onLdctxtRetired(op);
    };
    cpu.setProtoHooks(std::move(hooks));
    cpu.setSource(cpu.protocolTid(), this);
}

bool
ProtocolThread::canAccept() const
{
    if (handlers_.empty())
        return true;
    if (!params_.lookAheadScheduling)
        return false; // Next PC only after the previous ldctxt graduates.
    // One look-ahead handler, once the previous finished fetching.
    return handlers_.size() == 1 && handlers_.front().fullyFetched();
}

void
ProtocolThread::start(TransactionCtx *ctx)
{
    SMTP_ASSERT(canAccept(), "dispatch into a busy protocol thread");
    if (handlers_.empty()) {
        busyStart_ = eq_->curTick();
        SMTP_TRACE_EVENT(trace_, eq_->curTick(),
                         trace::EventId::ProtoBusyBegin, 0);
    } else {
        ++lookAheadStarts;
    }
    SMTP_TRACE_EVENT(trace_, eq_->curTick(), trace::EventId::HandlerStart,
                     trace::packMsg(ctx->msg, ctx->msg.mshr));
    ++handlersStarted;
    handlers_.emplace_back();
    Handler &h = handlers_.back();
    h.ctx = ctx;
    convertTrace(h);
    cpu_->poke();
}

void
ProtocolThread::convertTrace(Handler &h)
{
    for (const auto &rec : h.ctx->trace.insts) {
        MicroOp op;
        op.pc = proto::protoCodeBase + 4ULL * rec.pc;
        op.token = h.ctx->id;
        auto rd = [&](std::uint8_t r) {
            return r == 0 ? regNone : r;
        };
        switch (rec.inst.op) {
          case POp::Nop:
            op.cls = OpClass::Nop;
            break;
          case POp::Popc:
          case POp::Ctz:
            if (!params_.bitAssistOps) {
                // Expand into a dependent ALU sequence: the cost of
                // lacking the special instructions (Section 2.1).
                for (unsigned k = 0;
                     k + 1 < params_.bitAssistExpansion; ++k) {
                    MicroOp x;
                    x.pc = op.pc;
                    x.token = op.token;
                    x.cls = OpClass::IntAlu;
                    x.dest = rd(rec.inst.rd);
                    x.src1 = k == 0 ? rec.inst.rs1 : rd(rec.inst.rd);
                    h.ops.push_back(x);
                }
            }
            op.cls = OpClass::IntAlu;
            op.dest = rd(rec.inst.rd);
            op.src1 = params_.bitAssistOps ? rec.inst.rs1
                                           : rd(rec.inst.rd);
            break;
          case POp::Add: case POp::Addi: case POp::Sub: case POp::And:
          case POp::Andi: case POp::Or: case POp::Ori: case POp::Xor:
          case POp::Xori: case POp::Sll: case POp::Srl: case POp::Sllv:
          case POp::Srlv: case POp::Sltu: case POp::Sltiu: case POp::Lui:
          case POp::Dira:
            op.cls = OpClass::IntAlu;
            op.dest = rd(rec.inst.rd);
            op.src1 = rec.inst.rs1;
            op.src2 = rec.inst.rs2;
            break;
          case POp::Ld:
            op.cls = OpClass::PLoad;
            op.dest = rd(rec.inst.rd);
            op.src1 = rec.inst.rs1;
            op.effAddr = rec.memAddr;
            op.memBytes = rec.inst.memBytes;
            break;
          case POp::St:
            op.cls = OpClass::PStore;
            op.src1 = rec.inst.rs1;
            op.src2 = rec.inst.rs2;
            op.effAddr = rec.memAddr;
            op.memBytes = rec.inst.memBytes;
            break;
          case POp::Beq:
          case POp::Bne:
          case POp::J:
            op.cls = OpClass::Branch;
            op.isCondBranch = rec.inst.op != POp::J;
            op.src1 = rec.inst.rs1;
            op.src2 = rec.inst.rs2;
            op.taken = rec.branchTaken;
            op.target =
                rec.branchTaken
                    ? proto::protoCodeBase +
                          4ULL * static_cast<std::uint64_t>(rec.inst.imm)
                    : op.pc + 4;
            break;
          case POp::SendH:
            op.cls = OpClass::PSendH;
            op.src1 = rec.inst.rs2;
            break;
          case POp::SendG:
            op.cls = OpClass::PSendG;
            op.src1 = rec.inst.rs1;
            op.sendIdx = rec.sendIdx;
            break;
          case POp::Switch:
            op.cls = OpClass::PSwitch;
            op.dest = rd(rec.inst.rd);
            break;
          case POp::Ldctxt:
            op.cls = OpClass::PLdctxt;
            op.dest = rd(rec.inst.rd);
            op.endOfHandler = true;
            break;
          case POp::Ldprobe:
            op.cls = OpClass::PLdprobe;
            op.dest = rd(rec.inst.rd);
            break;
        }
        h.ops.push_back(op);
    }
    SMTP_ASSERT(!h.ops.empty() && h.ops.back().endOfHandler,
                "handler trace must end in ldctxt");
}

bool
ProtocolThread::hasNext()
{
    for (const auto &h : handlers_) {
        if (!h.fullyFetched())
            return true;
    }
    return false;
}

const MicroOp &
ProtocolThread::peek()
{
    for (auto &h : handlers_) {
        if (!h.fullyFetched())
            return h.ops[h.fetchIdx];
    }
    SMTP_PANIC("peek with no protocol micro-ops pending");
}

void
ProtocolThread::consume()
{
    for (auto &h : handlers_) {
        if (!h.fullyFetched()) {
            ++h.fetchIdx;
            ++opsSupplied;
            if (h.fullyFetched()) {
                // PPCV cleared by the ldctxt quick-compare; the memory
                // controller may now dispatch into the LAS slot.
                mc_->agentPoke();
            }
            return;
        }
    }
    SMTP_PANIC("consume with no protocol micro-ops pending");
}

void
ProtocolThread::saveState(snap::Ser &out) const
{
    out.u64(handlers_.size());
    for (const Handler &h : handlers_) {
        out.u64(h.ctx->id);
        out.u64(h.fetchIdx);
    }
    out.u64(busyTicks_);
    out.u64(busyStart_);
    handlersStarted.saveState(out);
    lookAheadStarts.saveState(out);
    opsSupplied.saveState(out);
}

void
ProtocolThread::restoreState(snap::Des &in)
{
    handlers_.clear();
    std::uint64_t n = in.count(16);
    for (std::uint64_t i = 0; in.ok() && i < n; ++i) {
        std::uint64_t id = in.u64();
        std::uint64_t fetch_idx = in.u64();
        TransactionCtx *ctx = mc_->ctxById(id);
        if (ctx == nullptr) {
            in.fail("corrupt snapshot: protocol thread references an "
                    "unknown transaction");
            return;
        }
        handlers_.emplace_back();
        Handler &h = handlers_.back();
        h.ctx = ctx;
        convertTrace(h);
        if (fetch_idx > h.ops.size()) {
            in.fail("corrupt snapshot: handler fetch cursor out of "
                    "range");
            return;
        }
        h.fetchIdx = fetch_idx;
    }
    busyTicks_ = in.u64();
    busyStart_ = in.u64();
    handlersStarted.restoreState(in);
    lookAheadStarts.restoreState(in);
    opsSupplied.restoreState(in);
}

TransactionCtx *
ProtocolThread::ctxForToken(std::uint64_t token)
{
    for (auto &h : handlers_) {
        if (h.ctx->id == token)
            return h.ctx;
    }
    SMTP_PANIC("protocol op references a dead handler");
}

void
ProtocolThread::onSendG(const MicroOp &op)
{
    SMTP_ASSERT(op.sendIdx >= 0, "sendg without send record");
    mc_->releaseSend(ctxForToken(op.token),
                     static_cast<unsigned>(op.sendIdx));
}

Tick
ProtocolThread::probeReadyAt(const MicroOp &op)
{
    return mc_->probeReadyTick(ctxForToken(op.token));
}

void
ProtocolThread::onLdctxtRetired(const MicroOp &op)
{
    SMTP_ASSERT(!handlers_.empty() &&
                    handlers_.front().ctx->id == op.token,
                "handlers must retire in dispatch order");
    TransactionCtx *ctx = handlers_.front().ctx;
    handlers_.pop_front();
    SMTP_TRACE_EVENT(trace_, eq_->curTick(), trace::EventId::HandlerRetire,
                     trace::packMsg(ctx->msg, ctx->msg.mshr));
    if (handlers_.empty()) {
        busyTicks_ += eq_->curTick() - busyStart_;
        SMTP_TRACE_EVENT(trace_, eq_->curTick(),
                         trace::EventId::ProtoBusyEnd, 0);
    }
    mc_->handlerDone(ctx);
}

} // namespace smtp
