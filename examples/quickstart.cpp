/**
 * @file
 * Quickstart: build a 4-node SMTp DSM machine, run the FFT workload on
 * it, and print the headline metrics. This is the smallest end-to-end
 * use of the library:
 *
 *   1. pick a MachineModel and size (MachineParams),
 *   2. build a workload and bind its threads to the machine,
 *   3. run() and read the metrics.
 */

#include <cstdio>

#include "machine/machine.hpp"
#include "workload/app.hpp"

using namespace smtp;

int
main()
{
    // 1. A 4-node SMTp machine: SMT cores with a protocol thread
    //    context and standard integrated memory controllers.
    MachineParams mp;
    mp.model = MachineModel::SMTp;
    mp.nodes = 4;
    mp.appThreadsPerNode = 1;
    Machine machine(mp);

    // 2. The FFT workload (Table 1 of the paper), one generator thread
    //    per node, data pages placed on their owners' nodes.
    FuncMem mem;
    auto app = workload::makeApp("FFT");
    workload::WorkloadEnv env;
    env.mem = &mem;
    env.map = &machine.addressMap();
    env.nodes = mp.nodes;
    env.threadsPerNode = mp.appThreadsPerNode;
    env.scale = 1.0;
    app->build(env);
    for (unsigned t = 0; t < env.totalThreads(); ++t)
        machine.setGlobalSource(t, app->thread(t));

    // 3. Run to completion and report.
    Tick exec = machine.run();
    std::printf("FFT on a 4-node SMTp machine\n");
    std::printf("  parallel execution time : %.1f us\n",
                static_cast<double>(exec) / tickPerUs);
    std::printf("  memory-stall fraction   : %.1f%%\n",
                100.0 * machine.memStallFraction());
    std::printf("  peak protocol occupancy : %.1f%%\n",
                100.0 * machine.peakProtocolOccupancy());
    auto pc = machine.protoCharacteristics();
    std::printf("  protocol instructions   : %.2f%% of all retired\n",
                100.0 * pc.retiredInstPct);
    for (unsigned n = 0; n < mp.nodes; ++n) {
        const auto &node = machine.node(n);
        std::printf("  node %u: %llu handlers, %llu L2 misses\n", n,
                    static_cast<unsigned long long>(
                        node.pthread->handlersStarted.value()),
                    static_cast<unsigned long long>(
                        node.cache->l2Misses.value()));
    }
    return 0;
}
