/**
 * @file
 * Writing a custom workload: a lock-protected global histogram with a
 * tree barrier, expressed as coroutine generators running on a 4-node
 * SMTp machine. Demonstrates the ThreadCtx primitives (timed loads,
 * stores, atomics, prefetch, loops) and the sync library.
 */

#include <cstdio>

#include "machine/machine.hpp"
#include "workload/app.hpp"
#include "workload/gen.hpp"
#include "workload/sync.hpp"

using namespace smtp;
using namespace smtp::workload;

namespace
{

class HistogramApp : public App
{
  public:
    std::string_view name() const override { return "histogram"; }

    void
    build(const WorkloadEnv &env) override
    {
        makeThreads(env);
        unsigned p = env.totalThreads();
        // 16 shared bins (one line each, spread over homes) + a lock.
        for (unsigned b = 0; b < 16; ++b)
            bins_.push_back(
                alloc_->allocLine(static_cast<NodeId>(b % env.nodes)));
        lock_ = alloc_->allocLine(0);
        result_ = alloc_->allocLine(0);
        barrier_ = std::make_unique<TreeBarrier>(
            p, env.nodes, [&](NodeId h) { return alloc_->allocLine(h); });
        // Per-thread private input arrays, placed locally.
        for (unsigned t = 0; t < p; ++t) {
            Addr in = alloc_->alloc(256 * 8, env.nodeOf(t), pageBytes);
            for (unsigned i = 0; i < 256; ++i)
                env.mem->poke(in + i * 8, rng_.next() & 0xffff);
            inputs_.push_back(in);
            threads_[t]->run(worker(*threads_[t], t));
        }
    }

    std::uint64_t
    binTotal(FuncMem &mem) const
    {
        return mem.read(result_);
    }

  private:
    Task
    worker(ThreadCtx &ctx, unsigned tid)
    {
        // Local pass: bucket my values with atomic increments.
        auto lp = ctx.loopBegin();
        for (unsigned i = 0; i < 256; ++i) {
            std::uint64_t v = co_await ctx.load(inputs_[tid] + i * 8);
            co_await ctx.intOps(2);
            co_await ctx.fetchAdd(bins_[v % 16], 1);
            co_await ctx.loopEnd(lp, i + 1 < 256);
        }
        co_await barrier_->wait(ctx, tid);
        // One thread folds the 16 bins under the lock.
        if (tid == 0) {
            co_await acquireLock(ctx, lock_);
            std::uint64_t sum = 0;
            for (Addr b : bins_)
                sum += co_await ctx.load(b);
            co_await ctx.store(result_, sum);
            co_await releaseLock(ctx, lock_);
        }
        co_await barrier_->wait(ctx, tid);
    }

    std::vector<Addr> bins_, inputs_;
    Addr lock_ = 0, result_ = 0;
    std::unique_ptr<TreeBarrier> barrier_;
};

} // namespace

int
main()
{
    MachineParams mp;
    mp.model = MachineModel::SMTp;
    mp.nodes = 4;
    mp.appThreadsPerNode = 2; // 8 threads
    Machine machine(mp);
    FuncMem mem;
    HistogramApp app;
    WorkloadEnv env;
    env.mem = &mem;
    env.map = &machine.addressMap();
    env.nodes = 4;
    env.threadsPerNode = 2;
    app.build(env);
    for (unsigned t = 0; t < env.totalThreads(); ++t)
        machine.setGlobalSource(t, app.thread(t));
    Tick exec = machine.run();

    std::printf("8 threads histogrammed 2048 values in %.1f us\n",
                static_cast<double>(exec) / tickPerUs);
    std::printf("bin total: %llu (expect 2048)\n",
                static_cast<unsigned long long>(app.binTotal(mem)));
    std::printf("coherence traffic: %llu network messages\n",
                static_cast<unsigned long long>(
                    machine.network().msgsInjected()));
    return 0;
}
