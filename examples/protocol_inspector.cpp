/**
 * @file
 * Protocol inspector: disassembles the coherence handler image the
 * protocol thread executes, then traces one remote read-to-dirty-line
 * transaction through a 2-node machine, printing every directory state
 * transition — a debugging lens onto the protocol layer.
 */

#include <cstdio>

#include "machine/machine.hpp"
#include "protocol/assembler.hpp"
#include "workload/app.hpp"
#include "workload/gen.hpp"

using namespace smtp;

namespace
{

const char *
dirStateName(proto::DirState s)
{
    switch (s) {
      case proto::dirUnowned: return "Unowned";
      case proto::dirShared: return "Shared";
      case proto::dirExclusive: return "Exclusive";
      case proto::dirBusySh: return "BusyShared";
      case proto::dirBusyEx: return "BusyExclusive";
      case proto::dirBusyShWaitPut: return "BusyShared/WaitPut";
      case proto::dirBusyExWaitPut: return "BusyExclusive/WaitPut";
    }
    return "?";
}

/** Two scripted threads: node 1 dirties a line, node 0 then reads it. */
struct TraceApp : workload::App
{
    Addr line = 0;
    std::string_view name() const override { return "trace"; }

    void
    build(const workload::WorkloadEnv &env) override
    {
        makeThreads(env);
        line = alloc_->allocLine(0); // homed at node 0
        barrier_ = std::make_unique<workload::TreeBarrier>(
            2, env.nodes, [&](NodeId h) { return alloc_->allocLine(h); });
        threads_[0]->run(reader(*threads_[0]));
        threads_[1]->run(writer(*threads_[1]));
    }

    Task
    writer(ThreadCtx &ctx)
    {
        co_await ctx.store(line, 42); // remote GETX: node 1 becomes owner
        co_await barrier_->wait(ctx, 1);
        co_await barrier_->wait(ctx, 1);
    }

    Task
    reader(ThreadCtx &ctx)
    {
        co_await barrier_->wait(ctx, 0);
        // Home-local read of a remotely-dirty line: sharing intervention.
        std::uint64_t v = co_await ctx.load(line);
        std::printf("  reader observed value %llu\n",
                    static_cast<unsigned long long>(v));
        co_await barrier_->wait(ctx, 0);
    }

    std::unique_ptr<workload::TreeBarrier> barrier_;
};

} // namespace

int
main()
{
    // Part 1: the handler image.
    auto fmt = proto::DirFormat::forNodes(16);
    auto image = proto::buildHandlerImage(fmt);
    std::printf("handler image: %zu instructions (%zu bytes of protocol "
                "code)\n\n",
                image.code.size(), 4 * image.code.size());
    for (unsigned t = 0; t < proto::numMsgTypes; ++t) {
        if (!image.hasHandler[t])
            continue;
        auto type = static_cast<proto::MsgType>(t);
        std::printf("%s handler @ pc %u\n",
                    std::string(msgTypeName(type)).c_str(),
                    image.entry[t]);
    }
    std::printf("\ndisassembly of the ReqGet (home-side read) handler:\n");
    unsigned pc = image.entry[static_cast<unsigned>(proto::MsgType::ReqGet)];
    for (unsigned i = 0; i < 16 && pc + i < image.code.size(); ++i)
        std::printf("  %s\n",
                    proto::disassemble(image.code[pc + i], pc + i).c_str());

    // Part 2: trace a dirty-remote read on a live 2-node machine.
    std::printf("\ntracing: node 1 dirties a node-0-homed line, node 0 "
                "reads it back\n");
    MachineParams mp;
    mp.model = MachineModel::SMTp;
    mp.nodes = 2;
    Machine machine(mp);
    FuncMem mem;
    TraceApp app;
    workload::WorkloadEnv env;
    env.mem = &mem;
    env.map = &machine.addressMap();
    env.nodes = 2;
    env.threadsPerNode = 1;
    app.build(env);
    machine.setGlobalSource(0, app.thread(0));
    machine.setGlobalSource(1, app.thread(1));
    machine.run();
    machine.quiesce();

    auto entry = machine.node(0).mc->dirEntry(app.line);
    std::printf("  final directory state : %s\n",
                dirStateName(machine.dirFormat().state(entry)));
    std::printf("  sharer vector         : 0x%llx\n",
                static_cast<unsigned long long>(
                    machine.dirFormat().vector(entry)));
    std::printf("  node0 L2 state=%d node1 L2 state=%d (1=Shared)\n",
                static_cast<int>(machine.node(0).cache->l2State(app.line)),
                static_cast<int>(machine.node(1).cache->l2State(app.line)));
    return 0;
}
