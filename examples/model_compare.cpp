/**
 * @file
 * The paper's headline comparison in miniature: run Ocean on an 8-node
 * machine under all five machine models of Table 4 and print normalized
 * execution times. Expect Base slowest, SMTp tracking Int512KB, and
 * IntPerfect as the bound.
 */

#include <cstdio>

#include "machine/machine.hpp"
#include "workload/app.hpp"

using namespace smtp;

namespace
{

Tick
runModel(MachineModel model)
{
    MachineParams mp;
    mp.model = model;
    mp.nodes = 8;
    mp.appThreadsPerNode = 1;
    mp.dirCacheDivisor = 16; // scaled-simulation directory caches
    Machine machine(mp);
    FuncMem mem;
    auto app = workload::makeApp("Ocean");
    workload::WorkloadEnv env;
    env.mem = &mem;
    env.map = &machine.addressMap();
    env.nodes = mp.nodes;
    env.threadsPerNode = 1;
    env.scale = 1.0;
    app->build(env);
    for (unsigned t = 0; t < env.totalThreads(); ++t)
        machine.setGlobalSource(t, app->thread(t));
    return machine.run();
}

} // namespace

int
main()
{
    std::printf("Ocean, 8 nodes, 1 thread/node (normalized to Base):\n");
    double base = 0.0;
    for (MachineModel m :
         {MachineModel::Base, MachineModel::IntPerfect,
          MachineModel::Int512KB, MachineModel::Int64KB,
          MachineModel::SMTp}) {
        double t = static_cast<double>(runModel(m));
        if (m == MachineModel::Base)
            base = t;
        std::printf("  %-12s %8.1f us   %.3f\n",
                    std::string(modelName(m)).c_str(), t / tickPerUs,
                    t / base);
    }
    return 0;
}
